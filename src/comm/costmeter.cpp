#include "src/comm/costmeter.hpp"

#include <algorithm>
#include <sstream>

#include "src/util/error.hpp"

namespace cagnet {

const char* comm_category_name(CommCategory c) {
  switch (c) {
    case CommCategory::kDense:
      return "dense";
    case CommCategory::kSparse:
      return "sparse";
    case CommCategory::kTranspose:
      return "trpose";
    case CommCategory::kHalo:
      return "halo";
    case CommCategory::kCompressed:
      return "compressed";
    case CommCategory::kControl:
      return "control";
    case CommCategory::kCount:
      break;
  }
  return "?";
}

// [[hot-path]]
void CostMeter::add(CommCategory cat, double latency_units, double words) {
  latency_[static_cast<std::size_t>(cat)] += latency_units;
  words_[static_cast<std::size_t>(cat)] += words;
}

double CostMeter::latency_units(CommCategory cat) const {
  return latency_[static_cast<std::size_t>(cat)];
}

double CostMeter::words(CommCategory cat) const {
  return words_[static_cast<std::size_t>(cat)];
}

double CostMeter::total_latency_units() const {
  double total = 0;
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    if (static_cast<CommCategory>(i) == CommCategory::kControl) continue;
    total += latency_[i];
  }
  return total;
}

double CostMeter::total_words() const {
  double total = 0;
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    if (static_cast<CommCategory>(i) == CommCategory::kControl) continue;
    total += words_[i];
  }
  return total;
}

double CostMeter::modeled_seconds(const MachineModel& m,
                                  CommCategory cat) const {
  if (cat == CommCategory::kControl) return 0.0;
  const auto i = static_cast<std::size_t>(cat);
  return m.alpha * latency_[i] + m.beta * words_[i];
}

double CostMeter::modeled_seconds(const MachineModel& m) const {
  double total = 0;
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    total += modeled_seconds(m, static_cast<CommCategory>(i));
  }
  return total;
}

void CostMeter::begin_overlap_region() {
  CAGNET_CHECK(!region_open_, "overlap regions may not nest");
  region_lat_mark_ = latency_;
  region_words_mark_ = words_;
  region_open_ = true;
}

void CostMeter::end_overlap_region(const MachineModel& m,
                                   double compute_seconds) {
  CAGNET_CHECK(region_open_, "end_overlap_region without begin");
  double comm_seconds = 0;
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    if (static_cast<CommCategory>(i) == CommCategory::kControl) continue;
    comm_seconds += m.alpha * (latency_[i] - region_lat_mark_[i]) +
                    m.beta * (words_[i] - region_words_mark_[i]);
  }
  overlap_serialized_ += comm_seconds + compute_seconds;
  overlap_overlapped_ += std::max(comm_seconds, compute_seconds);
  overlap_regions_ += 1;
  region_open_ = false;
}

void CostMeter::merge_max(const CostMeter& other) {
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    latency_[i] = std::max(latency_[i], other.latency_[i]);
    words_[i] = std::max(words_[i], other.words_[i]);
  }
  overlap_serialized_ = std::max(overlap_serialized_,
                                 other.overlap_serialized_);
  overlap_overlapped_ = std::max(overlap_overlapped_,
                                 other.overlap_overlapped_);
  overlap_regions_ = std::max(overlap_regions_, other.overlap_regions_);
  stale_saved_words_ = std::max(stale_saved_words_,
                                other.stale_saved_words_);
}

void CostMeter::merge_sum(const CostMeter& other) {
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    latency_[i] += other.latency_[i];
    words_[i] += other.words_[i];
  }
  overlap_serialized_ += other.overlap_serialized_;
  overlap_overlapped_ += other.overlap_overlapped_;
  overlap_regions_ += other.overlap_regions_;
  stale_saved_words_ += other.stale_saved_words_;
}

void CostMeter::subtract(const CostMeter& other) {
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    latency_[i] -= other.latency_[i];
    words_[i] -= other.words_[i];
  }
  overlap_serialized_ -= other.overlap_serialized_;
  overlap_overlapped_ -= other.overlap_overlapped_;
  overlap_regions_ -= other.overlap_regions_;
  stale_saved_words_ -= other.stale_saved_words_;
}

std::string CostMeter::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    if (i != 0) os << " ";
    os << comm_category_name(static_cast<CommCategory>(i)) << "={lat="
       << latency_[i] << ", words=" << words_[i] << "}";
  }
  return os.str();
}

}  // namespace cagnet
