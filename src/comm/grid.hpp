// Process-grid topologies for the 1D / 2D / 3D algorithm families.
#pragma once

#include <utility>

#include "src/comm/comm.hpp"

namespace cagnet {

/// Even-as-possible block range: element range [lo, hi) owned by `idx` of
/// `parts` over a dimension of extent n. Matches the paper's block
/// decomposition (process i owns rows in/P .. (i+1)n/P - 1).
inline std::pair<Index, Index> block_range(Index n, int parts, int idx) {
  return {n * idx / parts, n * (idx + 1) / parts};
}

/// Pr x Pc mesh. Rank (i, j) is world rank i*Pc + j; `row` spans the ranks
/// sharing i (for row broadcasts), `col` spans the ranks sharing j.
struct Grid2D {
  Comm world;
  Comm row;
  Comm col;
  int pr = 0;
  int pc = 0;
  int i = 0;
  int j = 0;

  static Grid2D create(const Comm& world, int pr, int pc);

  /// Square grid of dimension sqrt(P); world size must be a perfect square.
  static Grid2D create_square(const Comm& world);
};

/// q x q x q mesh (P = q^3). Rank (i, j, k) is world rank k*q*q + i*q + j.
/// `layer` is the 2D grid sharing k; `row`/`col` are within-layer lines;
/// `fiber` spans the q ranks sharing (i, j) across layers (the reduction
/// dimension of Split-3D-SpMM).
struct Grid3D {
  Comm world;
  Comm layer;
  Comm row;
  Comm col;
  Comm fiber;
  int q = 0;
  int i = 0;
  int j = 0;
  int k = 0;

  static Grid3D create(const Comm& world, int q);

  /// Cube grid; world size must be a perfect cube.
  static Grid3D create_cube(const Comm& world);
};

/// Fine block range of the 3D distribution: coarse block `coarse` of n over
/// q parts, subdivided again into q fine slabs, of which `sub` is returned.
/// A^T's 3D blocks are (coarse rows x fine cols); H's are (fine rows x
/// feature cols) — Section IV-D's n/P^(1/3) x n/P^(2/3) shapes.
inline std::pair<Index, Index> fine_range(Index n, int q, int coarse,
                                          int sub) {
  const auto [clo, chi] = block_range(n, q, coarse);
  const auto [flo, fhi] = block_range(chi - clo, q, sub);
  return {clo + flo, clo + fhi};
}

/// Largest integer r with r*r == p, or 0 if p is not a perfect square.
int exact_sqrt(int p);
/// Largest integer r with r*r*r == p, or 0 if p is not a perfect cube.
int exact_cbrt(int p);

}  // namespace cagnet
