#include "src/comm/compress.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "src/util/error.hpp"
#include "src/util/parallel.hpp"

namespace cagnet {

namespace {

// ---------------------------------------------------------------------
// fp16 scalar conversions (portable bit manipulation, RN-even).

std::uint16_t encode_half(Real value) {
  const float f = static_cast<float>(value);
  const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const auto sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
  const std::uint32_t mag = x & 0x7fffffffu;
  if (mag >= 0x7f800000u) {  // inf / nan
    return sign | (mag > 0x7f800000u ? 0x7e00u : 0x7c00u);
  }
  if (mag >= 0x38800000u) {  // normal half range
    // Round-to-nearest-even on the 13 dropped mantissa bits.
    const std::uint32_t rounded = mag + 0xfffu + ((mag >> 13) & 1u);
    if (rounded >= 0x47800000u) return sign | 0x7c00u;  // rounds to inf
    return sign |
           static_cast<std::uint16_t>((rounded - 0x38000000u) >> 13);
  }
  if (mag < 0x33000000u) return sign;  // underflows half subnormals
  // Subnormal half: value = mant * 2^(exp-150); the half subnormal unit
  // is 2^-24, so the quotient is mant >> (126 - exp), RN-even.
  const std::uint32_t exp = mag >> 23;
  const std::uint32_t mant = (mag & 0x7fffffu) | 0x800000u;
  const std::uint32_t shift = 126u - exp;  // in [14, 24]
  const std::uint32_t q = mant >> shift;
  const std::uint32_t rem = mant & ((1u << shift) - 1u);
  const std::uint32_t half_bit = 1u << (shift - 1);
  std::uint32_t h = q;
  if (rem > half_bit || (rem == half_bit && (q & 1u))) ++h;
  return sign | static_cast<std::uint16_t>(h);  // may carry into normals
}

Real decode_half(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x3ffu;
  std::uint32_t x;
  if (exp == 0) {
    if (mant == 0) {
      x = sign;
    } else {
      // Normalize the subnormal into a float with an explicit exponent.
      std::uint32_t m = mant;
      std::uint32_t e = 113;
      while (!(m & 0x400u)) {
        m <<= 1;
        --e;
      }
      x = sign | (e << 23) | ((m & 0x3ffu) << 13);
    }
  } else if (exp == 31) {
    x = sign | 0x7f800000u | (mant << 13);
  } else {
    x = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  return static_cast<Real>(std::bit_cast<float>(x));
}

// ---------------------------------------------------------------------
// Chunk layout helpers. Chunk c covers values [c*256, min(n, c*256+256)).

std::size_t num_chunks(std::size_t n) {
  return (n + kCompressChunk - 1) / kCompressChunk;
}

/// Byte offset of chunk c in the encoded stream (all earlier chunks are
/// full, so offsets are closed-form).
std::size_t chunk_byte_offset(CompressMode mode, std::size_t c) {
  const std::size_t lo = c * kCompressChunk;
  switch (mode) {
    case CompressMode::kFp16:
      return 2 * lo;
    case CompressMode::kInt8:
      return lo + 4 * c;
    case CompressMode::k1Bit:
      return 8 * c + lo / 8;
    case CompressMode::kOff:
      return sizeof(Real) * lo;
  }
  CAGNET_CHECK(false, "chunk_byte_offset: bad mode");
  return 0;
}

void store_f32(std::uint8_t* dst, float v) {
  std::memcpy(dst, &v, sizeof(v));
}

float load_f32(const std::uint8_t* src) {
  float v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}

void encode_chunk(CompressMode mode, const Real* v, std::size_t len,
                  std::uint8_t* out) {
  switch (mode) {
    case CompressMode::kFp16: {
      for (std::size_t i = 0; i < len; ++i) {
        const std::uint16_t h = encode_half(v[i]);
        std::memcpy(out + 2 * i, &h, 2);
      }
      return;
    }
    case CompressMode::kInt8: {
      Real amax = 0;
      for (std::size_t i = 0; i < len; ++i) {
        amax = std::max(amax, std::abs(v[i]));
      }
      const float scale = amax > 0 ? static_cast<float>(amax / 127.0) : 0.f;
      store_f32(out, scale);
      auto* q = reinterpret_cast<std::int8_t*>(out + 4);
      if (scale == 0.f) {
        std::memset(q, 0, len);
        return;
      }
      const Real s = static_cast<Real>(scale);
      for (std::size_t i = 0; i < len; ++i) {
        const auto level = static_cast<long long>(std::llround(v[i] / s));
        q[i] = static_cast<std::int8_t>(
            std::clamp<long long>(level, -127, 127));
      }
      return;
    }
    case CompressMode::k1Bit: {
      Real sum_pos = 0;
      Real sum_neg = 0;
      std::size_t n_pos = 0;
      for (std::size_t i = 0; i < len; ++i) {
        if (v[i] >= 0) {
          sum_pos += v[i];
          ++n_pos;
        } else {
          sum_neg += v[i];
        }
      }
      const std::size_t n_neg = len - n_pos;
      store_f32(out, n_pos ? static_cast<float>(sum_pos / n_pos) : 0.f);
      store_f32(out + 4, n_neg ? static_cast<float>(sum_neg / n_neg) : 0.f);
      std::uint8_t* bits = out + 8;
      std::memset(bits, 0, (len + 7) / 8);
      for (std::size_t i = 0; i < len; ++i) {
        if (v[i] >= 0) bits[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
      }
      return;
    }
    case CompressMode::kOff:
      break;
  }
  CAGNET_CHECK(false, "encode_chunk: bad mode");
}

void decode_chunk(CompressMode mode, const std::uint8_t* in, std::size_t len,
                  Real* out) {
  switch (mode) {
    case CompressMode::kFp16: {
      for (std::size_t i = 0; i < len; ++i) {
        std::uint16_t h;
        std::memcpy(&h, in + 2 * i, 2);
        out[i] = decode_half(h);
      }
      return;
    }
    case CompressMode::kInt8: {
      const Real s = static_cast<Real>(load_f32(in));
      const auto* q = reinterpret_cast<const std::int8_t*>(in + 4);
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = s * static_cast<Real>(q[i]);
      }
      return;
    }
    case CompressMode::k1Bit: {
      const Real mean_pos = static_cast<Real>(load_f32(in));
      const Real mean_neg = static_cast<Real>(load_f32(in + 4));
      const std::uint8_t* bits = in + 8;
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = (bits[i / 8] >> (i % 8)) & 1u ? mean_pos : mean_neg;
      }
      return;
    }
    case CompressMode::kOff:
      break;
  }
  CAGNET_CHECK(false, "decode_chunk: bad mode");
}

CompressMode compress_default_from_env() {
  const char* value = std::getenv("CAGNET_COMPRESS");
  if (value == nullptr || *value == '\0') return CompressMode::kOff;
  return parse_compress_mode(value);
}

/// Lazily initialized (unlike the bool knobs) so an unknown env value
/// throws a catchable Error at first use, not during static init.
CompressMode& compress_mode_ref() {
  static CompressMode mode = compress_default_from_env();
  return mode;
}

}  // namespace

const char* compress_mode_name(CompressMode mode) {
  switch (mode) {
    case CompressMode::kOff:
      return "off";
    case CompressMode::kFp16:
      return "fp16";
    case CompressMode::kInt8:
      return "int8";
    case CompressMode::k1Bit:
      return "1bit";
  }
  return "?";
}

CompressMode parse_compress_mode(const std::string& name) {
  if (name == "off") return CompressMode::kOff;
  if (name == "fp16") return CompressMode::kFp16;
  if (name == "int8") return CompressMode::kInt8;
  if (name == "1bit") return CompressMode::k1Bit;
  CAGNET_CHECK(false, "unknown CAGNET_COMPRESS value \"" + name +
                          "\" (expected off, fp16, int8, or 1bit)");
  return CompressMode::kOff;
}

CompressMode compress_mode() { return compress_mode_ref(); }

void set_compress_mode(CompressMode mode) { compress_mode_ref() = mode; }

CompressMode row_compress_mode() {
  const CompressMode mode = compress_mode();
  return mode == CompressMode::k1Bit ? CompressMode::kOff : mode;
}

bool reduce_scatter_compression_pays(CompressMode mode, std::size_t n,
                                     int p) {
  if (mode == CompressMode::kOff || p <= 1) return false;
  const double compressed =
      static_cast<double>(p) *
      (sizeof(std::uint64_t) +
       static_cast<double>(encoded_size_bytes(mode, n)));
  const double exact = static_cast<double>(sizeof(Real) * n) *
                       static_cast<double>(p - 1) / static_cast<double>(p);
  return compressed < exact;
}

std::size_t encoded_size_bytes(CompressMode mode, std::size_t n) {
  switch (mode) {
    case CompressMode::kOff:
      return sizeof(Real) * n;
    case CompressMode::kFp16:
      return 2 * n;
    case CompressMode::kInt8:
      return n + 4 * num_chunks(n);
    case CompressMode::k1Bit: {
      const std::size_t full = n / kCompressChunk;
      const std::size_t rem = n % kCompressChunk;
      return 8 * num_chunks(n) + full * (kCompressChunk / 8) +
             (rem + 7) / 8;
    }
  }
  CAGNET_CHECK(false, "encoded_size_bytes: bad mode");
  return 0;
}

void compress_encode(CompressMode mode, std::span<const Real> src,
                     std::uint8_t* dst, std::vector<Real>* residual) {
  CAGNET_CHECK(mode != CompressMode::kOff,
               "compress_encode: kOff has no encoded form");
  const std::size_t n = src.size();
  if (residual != nullptr && residual->size() != n) {
    residual->assign(n, 0);
  }
  if (n == 0) return;
  const auto chunks = static_cast<Index>(num_chunks(n));
  parallel_for(
      chunks,
      plan_chunks(static_cast<double>(n), kMinElemsPerChunk, chunks),
      [&](Index c0, Index c1) {
        std::array<Real, kCompressChunk> v;
        std::array<Real, kCompressChunk> dec;
        for (Index c = c0; c < c1; ++c) {
          const std::size_t lo = static_cast<std::size_t>(c) * kCompressChunk;
          const std::size_t len = std::min(kCompressChunk, n - lo);
          const Real* values = src.data() + lo;
          if (residual != nullptr) {
            Real* r = residual->data() + lo;
            for (std::size_t i = 0; i < len; ++i) v[i] = values[i] + r[i];
            values = v.data();
          }
          std::uint8_t* out = dst + chunk_byte_offset(mode, c);
          encode_chunk(mode, values, len, out);
          if (residual != nullptr) {
            decode_chunk(mode, out, len, dec.data());
            Real* r = residual->data() + lo;
            for (std::size_t i = 0; i < len; ++i) r[i] = v[i] - dec[i];
          }
        }
      });
}

void compress_decode_range(CompressMode mode, const std::uint8_t* src,
                           std::size_t n, std::size_t lo, std::size_t hi,
                           Real* dst) {
  CAGNET_CHECK(mode != CompressMode::kOff,
               "compress_decode_range: kOff has no encoded form");
  CAGNET_CHECK(lo <= hi && hi <= n,
               "compress_decode_range: range out of bounds");
  if (lo == hi) return;
  const auto c_lo = static_cast<Index>(lo / kCompressChunk);
  const auto c_hi = static_cast<Index>((hi - 1) / kCompressChunk) + 1;
  parallel_for(
      c_hi - c_lo,
      plan_chunks(static_cast<double>(hi - lo), kMinElemsPerChunk,
                  c_hi - c_lo),
      [&](Index i0, Index i1) {
        std::array<Real, kCompressChunk> tmp;
        for (Index i = i0; i < i1; ++i) {
          const Index c = c_lo + i;
          const std::size_t chunk_lo =
              static_cast<std::size_t>(c) * kCompressChunk;
          const std::size_t len = std::min(kCompressChunk, n - chunk_lo);
          const std::uint8_t* in = src + chunk_byte_offset(mode, c);
          const std::size_t want_lo = std::max(lo, chunk_lo);
          const std::size_t want_hi = std::min(hi, chunk_lo + len);
          if (want_lo == chunk_lo && want_hi == chunk_lo + len) {
            decode_chunk(mode, in, len, dst + (chunk_lo - lo));
          } else {
            decode_chunk(mode, in, len, tmp.data());
            std::memcpy(dst + (want_lo - lo), tmp.data() + (want_lo - chunk_lo),
                        sizeof(Real) * (want_hi - want_lo));
          }
        }
      });
}

}  // namespace cagnet
