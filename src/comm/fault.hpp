// Fault-injecting transport backend and the typed abort it surfaces.
//
// The simulated runtime's collectives all funnel through three narrow seam
// hooks — publish (a payload becomes visible), await (a rank blocks on
// peers), charge (the meter records the op) — declared in comm.hpp and
// consulted here. A FaultPlan armed behind that seam deterministically
// injects failures at chosen points of the communication schedule:
//
//   kill    throw CommAborted on the target rank at the N-th matching
//           event, modeling a rank crash. run_world's abort machinery
//           poisons the world; every peer unwinds with its own typed
//           CommAborted instead of hanging.
//   delay   sleep a few milliseconds before the N-th matching event,
//           stressing the overlap drains (results and meters must be
//           bitwise unchanged — pinned by tests/fault_test.cpp).
//   poison  throw CommAborted describing a corrupted payload at the N-th
//           matching event, modeling a receiver-side integrity check
//           (CRC) failure. Semantically a kill with a different diagnosis:
//           the world aborts before the poisoned data can reach a
//           checkpoint.
//
// Triggers count matching events per (rank, category, site) and fire when
// the count reaches N — exactly once per process, so a recovery driver
// that rebuilds the world after the abort resumes cleanly (the fault was
// transient). The N may also be derived deterministically from a seed
// (seeded_nth), giving chaos sweeps a reproducible source of varied
// injection points.
//
// With no plan installed the seam is a null-pointer test: no lock, no
// allocation, no charge perturbation — meters and results stay bitwise
// identical to a build without the seam.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/comm/costmeter.hpp"
#include "src/util/error.hpp"

namespace cagnet {

/// Where in an operation's lifecycle a seam event fires.
enum class FaultSite : std::uint8_t {
  kPost = 0,  ///< a payload publication (blocking publish or async post)
  kWait,      ///< a completion await (blocking rendezvous, wait, drain)
  kCharge,    ///< a meter charge (the op's accounting point)
};

const char* fault_site_name(FaultSite site);

/// What an armed trigger does when it fires.
enum class FaultAction : std::uint8_t {
  kKill = 0,  ///< rank crash: throw CommAborted at the event
  kDelay,     ///< sleep before the event (timing stress, results unchanged)
  kPoison,    ///< corrupted payload detected: throw CommAborted
};

const char* fault_action_name(FaultAction action);

/// Typed abort surfaced by every collective, PendingOp drain, halo
/// pipeline stage, and compressed op when the world dies: names the
/// observing rank, the op kind it was executing, the traffic category,
/// and the lifecycle site, plus a cause ("injected rank kill", "poisoned
/// payload detected", "a peer rank failed"). Derives from Error so
/// existing catch sites and EXPECT_THROW(..., Error) contracts hold.
class CommAborted : public Error {
 public:
  CommAborted(int rank, const char* op, CommCategory cat, FaultSite site,
              const std::string& cause);

  /// The rank that observed (or caused) the abort.
  int rank() const { return rank_; }
  /// Op kind the rank was executing ("broadcast", "ialltoallv", ...).
  const std::string& op() const { return op_; }
  /// Traffic category of that op.
  CommCategory category() const { return cat_; }
  /// Lifecycle site ("post", "wait", "charge").
  FaultSite site() const { return site_; }
  /// Why: injected kill / poisoned payload / peer failure.
  const std::string& cause() const { return cause_; }

 private:
  int rank_;
  std::string op_;
  CommCategory cat_;
  FaultSite site_;
  std::string cause_;
};

/// One armed injection point. `nth` counts matching events on `rank`
/// (1-based); `any_category` widens the match to every category. `rank`
/// is the rank *within the communicator performing the op* — the world
/// rank for world collectives, the group-local rank on splits (a split's
/// membership is data-dependent, so triggers name positions in a
/// schedule, not threads).
struct FaultTrigger {
  FaultAction action = FaultAction::kKill;
  int rank = 0;
  CommCategory category = CommCategory::kDense;
  bool any_category = false;
  FaultSite site = FaultSite::kPost;
  std::uint64_t nth = 1;
  int delay_millis = 2;  ///< kDelay only
};

/// Deterministic pick in [lo, hi] from a seed (splitmix64): the "seeded
/// schedule" form of a trigger's N. Same seed, same pick, any platform.
std::uint64_t seeded_nth(std::uint64_t seed, std::uint64_t lo,
                         std::uint64_t hi);

/// A deterministic fault schedule: an ordered set of triggers with
/// process-lifetime event counters. Thread-safe for concurrent on_event
/// calls (each trigger's counter is atomic; the trigger list is frozen
/// once installed).
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Builder forms (chainable). `nth` is 1-based.
  FaultPlan& kill(int rank, CommCategory cat, FaultSite site,
                  std::uint64_t nth);
  FaultPlan& kill_any(int rank, FaultSite site, std::uint64_t nth);
  FaultPlan& delay(int rank, CommCategory cat, FaultSite site,
                   std::uint64_t nth, int millis = 2);
  FaultPlan& poison(int rank, CommCategory cat, FaultSite site,
                    std::uint64_t nth);
  FaultPlan& add(const FaultTrigger& trigger);

  /// Parse a CAGNET_FAULT spec: `action:rank:category:site:nth[:millis]`
  /// entries separated by ';'. action in {kill, delay, poison}; category
  /// in {dense, sparse, trpose, transpose, halo, compressed, control,
  /// any}; site in {post, wait, charge}; nth a positive integer or
  /// `s<seed>` for a seeded pick in [1, 8]. Throws Error on a malformed
  /// spec (catchable — the lazy env parse surfaces it at first use).
  static FaultPlan parse(const std::string& spec);

  std::size_t trigger_count() const { return armed_.size(); }

  /// Seam callback: count this event against every matching trigger and
  /// act when one reaches its N. Throws CommAborted for kill/poison.
  void on_event(int rank, CommCategory cat, FaultSite site, const char* op);

 private:
  struct Armed {
    FaultTrigger trigger;
    std::atomic<std::uint64_t> count{0};

    Armed() = default;
    explicit Armed(const FaultTrigger& t) : trigger(t) {}
    Armed(const Armed& other)
        : trigger(other.trigger), count(other.count.load()) {}
  };

  std::vector<Armed> armed_;
};

/// Process-global fault plan (null = faults disabled; the fast path of
/// the transport seam). The CAGNET_FAULT env var, parsed once at first
/// use, can arm it; a malformed spec throws a catchable Error at that
/// first use. Like the other runtime knobs this is not per-world state:
/// install or clear plans only between run_world invocations.
std::shared_ptr<FaultPlan> fault_plan();
void set_fault_plan(std::shared_ptr<FaultPlan> plan);
inline void clear_fault_plan() { set_fault_plan(nullptr); }

}  // namespace cagnet
