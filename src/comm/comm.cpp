#include "src/comm/comm.hpp"

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>

#include "src/util/parallel.hpp"

namespace cagnet {

double ceil_log2(int p) {
  CAGNET_CHECK(p >= 1, "ceil_log2 of non-positive value");
  double bits = 0;
  int v = 1;
  while (v < p) {
    v <<= 1;
    bits += 1;
  }
  return bits;
}

void Comm::barrier() { phase(); }

void Comm::phase() const {
  state_->gate.arrive_and_wait();
  if (state_->aborted.load(std::memory_order_relaxed)) {
    throw Error("communicator aborted: a peer rank failed");
  }
}

void Comm::sync_sizes(std::size_t n, const char* what) const {
  auto& st = *state_;
  st.slot_len[static_cast<std::size_t>(rank_)] = n;
  phase();
  for (int r = 0; r < st.size; ++r) {
    CAGNET_CHECK(st.slot_len[static_cast<std::size_t>(r)] == n,
                 std::string(what) + ": ranks disagree on element count");
  }
  phase();
}

namespace {

/// Transient rendezvous used by Comm::split.
struct SplitContext {
  std::mutex mutex;
  std::map<int, std::vector<std::pair<int, int>>> groups;  // color -> (key, rank)
  std::map<int, std::shared_ptr<detail::CommState>> states;
};

}  // namespace

Comm Comm::split(int color, int key) const {
  CAGNET_CHECK(valid(), "split on an invalid communicator");
  auto& st = *state_;

  if (rank_ == 0) st.split_ctx = new SplitContext();
  phase();
  auto* ctx = static_cast<SplitContext*>(st.split_ctx);
  {
    std::lock_guard<std::mutex> lock(ctx->mutex);
    ctx->groups[color].push_back({key, rank_});
  }
  phase();

  // Membership is frozen now; reads below need no lock.
  std::vector<std::pair<int, int>> group = ctx->groups.at(color);
  std::sort(group.begin(), group.end());
  const auto it = std::find(group.begin(), group.end(),
                            std::make_pair(key, rank_));
  const int new_rank = static_cast<int>(it - group.begin());

  if (new_rank == 0) {
    auto new_state =
        std::make_shared<detail::CommState>(static_cast<int>(group.size()));
    std::lock_guard<std::mutex> lock(ctx->mutex);
    ctx->states[color] = new_state;
  }
  phase();

  std::shared_ptr<detail::CommState> new_state;
  {
    std::lock_guard<std::mutex> lock(ctx->mutex);
    new_state = ctx->states.at(color);
  }
  phase();
  if (rank_ == 0) {
    delete ctx;
    st.split_ctx = nullptr;
  }
  return Comm(std::move(new_state), new_rank, meter_);
}

void run_world(int p, const std::function<void(Comm&)>& fn,
               std::vector<CostMeter>* meters_out) {
  CAGNET_CHECK(p >= 1, "world size must be at least 1");
  auto state = std::make_shared<detail::CommState>(p);
  std::vector<CostMeter> meters(static_cast<std::size_t>(p));
  // P rank threads run concurrently; split the kernel thread budget among
  // them so nested SpMM parallelism cannot oversubscribe the host.
  ScopedThreadBudgetShare budget_share(p);

  std::exception_ptr first_error = nullptr;
  std::mutex error_mutex;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(state, r, &meters[static_cast<std::size_t>(r)]);
      try {
        fn(comm);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        // Release peers parked at the barrier, permanently removing this
        // rank so current and future phases complete; they observe the
        // aborted flag and unwind.
        state->aborted.store(true);
        state->gate.arrive_and_drop();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  if (meters_out) *meters_out = std::move(meters);
}

}  // namespace cagnet
