#include "src/comm/comm.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <thread>
#include <utility>

#include "src/util/parallel.hpp"
#include "src/util/profiler.hpp"

namespace cagnet {

namespace {

/// ScopedPhase over a nullable profiler: the compressed collectives time
/// their codec and wait work only when the caller supplied one.
class MaybePhase {
 public:
  MaybePhase(Profiler* profiler, Phase phase) {
    if (profiler != nullptr) scope_.emplace(*profiler, phase);
  }

 private:
  std::optional<ScopedPhase> scope_;
};

}  // namespace

double ceil_log2(int p) {
  CAGNET_CHECK(p >= 1, "ceil_log2 of non-positive value");
  double bits = 0;
  int v = 1;
  while (v < p) {
    v <<= 1;
    bits += 1;
  }
  return bits;
}

namespace detail {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kNone:
      return "none";
    case OpKind::kBcast:
      return "ibroadcast_from";
    case OpKind::kReduceScatter:
      return "ireduce_scatter_sum";
    case OpKind::kAllgatherv:
      return "iallgatherv_into";
    case OpKind::kAllreduce:
      return "iallreduce_sum";
    case OpKind::kAlltoallv:
      return "ialltoallv";
  }
  return "?";
}

void throw_peer_aborted(const OpContext& ctx, FaultSite site) {
  throw CommAborted(ctx.rank, ctx.op, ctx.cat, site, "a peer rank failed");
}

std::string order_mismatch(const OpContext& ctx, OpKind want, int peer,
                           OpKind got) {
  std::string msg = "nonblocking collective: ranks disagree on op order: "
                    "rank ";
  msg += std::to_string(ctx.rank);
  msg += " waiting on ";
  msg += op_kind_name(want);
  msg += " [";
  msg += comm_category_name(ctx.cat);
  msg += "], rank ";
  msg += std::to_string(peer);
  msg += " posted ";
  msg += op_kind_name(got);
  return msg;
}

void AbortHub::register_state(const std::shared_ptr<CommState>& state) {
  std::lock_guard<std::mutex> lock(mutex);
  states.push_back(state);
  // A checked state is also retained strongly: run_world audits every
  // communicator (world and splits) after the rank threads joined, by
  // which time the ranks' own refs to split states are gone.
  if (state->checker != nullptr) checked_states.push_back(state);
}

void AbortHub::poison() {
  aborted.store(true);
  std::lock_guard<std::mutex> lock(mutex);
  for (const auto& weak : states) {
    const auto state = weak.lock();
    if (!state) continue;
    // Any value change wakes parked waiters; they observe the flag and
    // unwind. The counters are meaningless once the world is dead. The
    // phase gate bump is what releases peers parked in a *blocking*
    // collective's rendezvous — including on split sub-communicators,
    // which std::barrier could never unblock from outside.
    state->gate.released.fetch_add(1, std::memory_order_release);
    state->gate.released.notify_all();
    for (const auto& channel : state->channels) {
      channel->posted.fetch_add(1, std::memory_order_release);
      channel->posted.notify_all();
      channel->finished.fetch_add(1, std::memory_order_release);
      channel->finished.notify_all();
      for (auto& by : channel->posted_by) {
        by.fetch_add(1, std::memory_order_release);
        by.notify_all();
      }
    }
  }
}

// [[hot-path]]
void await_counter(const std::atomic<std::uint64_t>& counter,
                   std::atomic<int>& waiters, std::uint64_t target,
                   const std::atomic<bool>& aborted, const OpContext& ctx) {
  // Fast path: the double-buffered loops post a whole compute stage before
  // they wait, so the counter usually already covers the target. When it
  // does not, park on the counter's futex — on an oversubscribed host the
  // cycles a spinning waiter would burn are cycles the rank it waits on
  // needs, and a sleep loop pays its wake-up latency on every sync.
  std::uint64_t cur = counter.load(std::memory_order_acquire);
  int spins = 0;
  while (cur < target) {
    if (aborted.load(std::memory_order_relaxed)) {
      throw_peer_aborted(ctx, FaultSite::kWait);
    }
    if (++spins <= 4) {
      std::this_thread::yield();  // let the posting rank run first
    } else {
      waiters.fetch_add(1, std::memory_order_seq_cst);
      counter.wait(cur, std::memory_order_seq_cst);
      waiters.fetch_sub(1, std::memory_order_seq_cst);
    }
    cur = counter.load(std::memory_order_acquire);
  }
  if (aborted.load(std::memory_order_relaxed)) {
    throw_peer_aborted(ctx, FaultSite::kWait);
  }
}

namespace {

/// Block until every rank but `rank` has left its slot-reading regions.
/// Abort-path only; must not throw (it runs inside unwinds). Terminates
/// because every open region exits in bounded time once the world is
/// poisoned: parked readers are woken by the poison bumps and throw at
/// their abort checks, active readers throw at their next await, and each
/// region exit under an aborted world notifies this waiter.
void await_window_drain(CommState& st, int rank) noexcept {
  for (int r = 0; r < st.size; ++r) {
    if (r == rank) continue;
    auto& depth = st.in_collective[static_cast<std::size_t>(r)];
    // The acquire load pairs with the region exit's release decrement:
    // everything the reader did inside the region happens-before this
    // rank's subsequent buffer frees.
    int cur = depth.load(std::memory_order_acquire);
    while (cur > 0) {
      depth.wait(cur, std::memory_order_acquire);
      cur = depth.load(std::memory_order_acquire);
    }
  }
}

}  // namespace

CollectiveWindow::~CollectiveWindow() {
  const bool unwinding = std::uncaught_exceptions() > entry_exceptions_;
  if (unwinding) {
    // Poison before closing the region: once the flag is up (seq_cst, as
    // is the region entry), no peer can pass an abort check and start a
    // new read of this rank's published buffers — any later region entry
    // is ordered after the poison in the seq_cst total order, so its
    // first await observes the flag and throws before touching a slot.
    st_.hub->poison();
  }
  auto& me = st_.in_collective[static_cast<std::size_t>(rank_)];
  me.fetch_sub(1, std::memory_order_release);
  if (st_.hub->aborted.load(std::memory_order_seq_cst)) {
    me.notify_all();  // a dying peer may be draining our region
    // Close-own-then-wait: this rank's region is already closed, so two
    // ranks dying at once drain each other without a cycle. Only after
    // every straggling reader left may the unwind free this rank's
    // published sources.
    await_window_drain(st_, rank_);
  }
}

}  // namespace detail

void Comm::barrier() {
  check_valid("barrier");
  phase({rank_, CommCategory::kControl, "barrier"});
}

void Comm::quiesce() const {
  check_valid("quiesce");
  const detail::OpContext ctx{rank_, CommCategory::kControl, "quiesce"};
  auto& st = *state_;
  // All ranks post in the same program order, so this rank's ticket count
  // is the communicator-wide count of posted ops. Channel C carried the
  // tickets congruent to C mod K; each must be finished by every rank.
  const std::uint64_t n = st.next_ticket[static_cast<std::size_t>(rank_)];
  for (std::uint64_t c = 0; c < detail::kAsyncChannels; ++c) {
    if (n <= c) break;
    const std::uint64_t ops_on_channel =
        (n - 1 - c) / static_cast<std::uint64_t>(detail::kAsyncChannels) + 1;
    detail::await_counter(
        st.channels[c]->finished, st.channels[c]->waiters,
        static_cast<std::uint64_t>(st.size) * ops_on_channel,
        st.hub->aborted, ctx);
  }
}

void Comm::quiesce_op(std::uint64_t ticket) const {
  check_valid("quiesce_op");
  const detail::OpContext ctx{rank_, CommCategory::kControl, "quiesce_op"};
  auto& st = *state_;
  if (auto* ck = st.checker.get()) ck->on_release(rank_, ticket, ctx.op);
  // Generations on a channel complete strictly in order (the recycle gate
  // serializes them), so finishing this op's generation implies the op —
  // and nothing on any other channel — is globally finished.
  auto& ch = *st.channels[ticket % static_cast<std::uint64_t>(
                                       detail::kAsyncChannels)];
  const std::uint64_t gen =
      ticket / static_cast<std::uint64_t>(detail::kAsyncChannels);
  detail::await_counter(ch.finished, ch.waiters,
                        static_cast<std::uint64_t>(st.size) * (gen + 1),
                        st.hub->aborted, ctx);
}

void Comm::phase(const detail::OpContext& ctx) const {
  // One rendezvous on the poison-wakeable PhaseGate. Arrivals count
  // cumulatively; arrival a belongs to phase (a-1)/P and the P-th arrival
  // of a phase releases the rest. The acq_rel arrival RMW chains with the
  // release on `released`, so slot writes before the barrier
  // happen-before slot reads after it on every rank, exactly like the
  // std::barrier it replaces — but a dead rank's absence no longer parks
  // peers forever: AbortHub::poison bumps `released` and everyone
  // unwinds through the abort checks in await_counter.
  auto& st = *state_;
  const std::atomic<bool>& aborted = st.hub->aborted;
  if (aborted.load(std::memory_order_relaxed)) {
    detail::throw_peer_aborted(ctx, FaultSite::kWait);
  }
  const std::uint64_t a =
      st.gate.arrived.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (a % st.gate.size == 0) {
    detail::bump_counter(st.gate.released, st.gate.waiters);
    if (aborted.load(std::memory_order_relaxed)) {
      detail::throw_peer_aborted(ctx, FaultSite::kWait);
    }
  } else {
    detail::await_counter(st.gate.released, st.gate.waiters,
                          (a - 1) / st.gate.size + 1, aborted, ctx);
  }
}

void Comm::sync_sizes(std::size_t n, const detail::OpContext& ctx) const {
  auto& st = *state_;
  st.slot_len[static_cast<std::size_t>(rank_)] = n;
  phase(ctx);
  for (int r = 0; r < st.size; ++r) {
    CAGNET_CHECK(st.slot_len[static_cast<std::size_t>(r)] == n,
                 std::string(ctx.op) + " [" + comm_category_name(ctx.cat) +
                     "]: ranks disagree on element count (rank " +
                     std::to_string(rank_) + " passed " + std::to_string(n) +
                     ", rank " + std::to_string(r) + " passed " +
                     std::to_string(
                         st.slot_len[static_cast<std::size_t>(r)]) +
                     ")");
  }
  phase(ctx);
}

PendingOp Comm::post_async(detail::OpKind kind, const void* publish_ptr,
                           std::size_t publish_len, int root,
                           CommCategory cat, bool charged,
                           void (*complete)(PendingOp&), void* out,
                           std::size_t out_len, std::size_t src_len,
                           void* gathered, const void* publish_ptr2) {
  auto& st = *state_;
  const auto rank = static_cast<std::size_t>(rank_);
  const detail::OpContext ctx{rank_, cat, detail::op_kind_name(kind)};
  CAGNET_CHECK(
      st.outstanding[rank] < detail::kAsyncChannels,
      "too many posted-but-unwaited nonblocking collectives on one "
      "communicator (max 16 in flight per rank); wait() some first");
  detail::seam_event(st, ctx, FaultSite::kPost);
  const std::uint64_t ticket = st.next_ticket[rank]++;
  auto& ch = *st.channels[ticket % static_cast<std::uint64_t>(
                                       detail::kAsyncChannels)];
  const std::uint64_t gen =
      ticket / static_cast<std::uint64_t>(detail::kAsyncChannels);
  // Recycle gate: every rank must have finished the channel's previous
  // generation before its slots may be overwritten.
  detail::await_counter(ch.finished, ch.waiters,
                        static_cast<std::uint64_t>(st.size) * gen,
                        st.hub->aborted, ctx);
  if (auto* ck = st.checker.get()) {
    // Re-assert the gate with the value this rank just observed, and audit
    // ticket issuance, before any slot is overwritten.
    ck->on_post(rank_, ticket, ctx.op, cat,
                ch.finished.load(std::memory_order_acquire),
                static_cast<std::uint64_t>(st.size) * gen);
  }
  ch.ptr[rank] = publish_ptr;
  ch.ptr2[rank] = publish_ptr2;
  ch.len[rank] = publish_len;
  ch.kind[rank] = kind;
  ch.root[rank] = root;
  // Per-rank counter first: a per-source drainer that sees it also sees
  // the slot writes above (release/acquire through the counter).
  detail::bump_counter(ch.posted_by[rank], ch.waiters);
  detail::bump_counter(ch.posted, ch.waiters);
  st.outstanding[rank]++;

  PendingOp op;
  op.state_ = state_;
  op.rank_ = rank_;
  op.meter_ = meter_;
  op.ticket_ = ticket;
  op.cat_ = cat;
  op.root_ = root;
  op.charged_ = charged;
  op.kind_ = kind;
  op.out_ = out;
  op.out_len_ = out_len;
  op.src_len_ = src_len;
  op.gathered_ = gathered;
  op.complete_ = complete;
  return op;
}

void PendingOp::wait() {
  if (!pending()) {
    // The no-op is the documented idempotent behaviour; under the
    // contract checker a repeated wait on a completed handle is a
    // diagnosed misuse (it usually means two owners think they complete
    // the same op).
    if (waited_) {
      contract::diagnose_double_wait(rank_, detail::op_kind_name(kind_),
                                     cat_);
    }
    return;
  }
  // A handle can legally outlive its Comm (the teardown audit diagnoses
  // it, but diagnosing requires surviving it): hold the state so the
  // window and channel stay valid past the state_.reset() below even when
  // this handle carried the last reference.
  const std::shared_ptr<detail::CommState> keep = state_;
  auto& st = *keep;
  detail::CollectiveWindow window(st, rank_);
  auto& ch = *st.channels[ticket_ % static_cast<std::uint64_t>(
                                        detail::kAsyncChannels)];
  const std::uint64_t gen =
      ticket_ / static_cast<std::uint64_t>(detail::kAsyncChannels);
  // A broadcast root moves no data and reads no peer slot at its own
  // wait: it completes passively (charge + bookkeeping) without awaiting
  // peers' posts, so stage roots never stall on stragglers. Its source —
  // like every op source — stays readable until the communicator's
  // release point (quiesce / quiesce_op / a blocking rendezvous).
  // Per-source-drain alltoallvs likewise skip the aggregate await: their
  // completer awaits exactly the sources still undrained, so a rank that
  // drained or skipped every source never stalls on peers it needs
  // nothing from.
  const bool passive_root =
      kind_ == detail::OpKind::kBcast && rank_ == root_;
  const bool per_source_drain =
      kind_ == detail::OpKind::kAlltoallv && gathered_ == nullptr;
  const detail::OpContext ctx{rank_, cat_, detail::op_kind_name(kind_)};
  detail::seam_event(st, ctx, FaultSite::kWait);
  if (!passive_root && !per_source_drain) {
    detail::await_counter(ch.posted, ch.waiters,
                          static_cast<std::uint64_t>(st.size) * (gen + 1),
                          st.hub->aborted, ctx);
  }
  complete_(*this);
  detail::bump_counter(ch.finished, ch.waiters);
  st.outstanding[static_cast<std::size_t>(rank_)]--;
  if (auto* ck = st.checker.get()) ck->on_complete(rank_);
  waited_ = true;
  state_.reset();
  complete_ = nullptr;
}

namespace {

/// Transient rendezvous used by Comm::split.
struct SplitContext {
  std::mutex mutex;
  std::map<int, std::vector<std::pair<int, int>>> groups;  // color -> (key, rank)
  std::map<int, std::shared_ptr<detail::CommState>> states;
};

}  // namespace

Comm Comm::split(int color, int key) const {
  CAGNET_CHECK(valid(), "split on an invalid communicator");
  const detail::OpContext op_ctx{rank_, CommCategory::kControl, "split"};
  auto& st = *state_;

  if (rank_ == 0) st.split_ctx = std::make_shared<SplitContext>();
  phase(op_ctx);
  auto* ctx = static_cast<SplitContext*>(st.split_ctx.get());
  {
    std::lock_guard<std::mutex> lock(ctx->mutex);
    ctx->groups[color].push_back({key, rank_});
  }
  phase(op_ctx);

  // Membership is frozen now; reads below need no lock.
  std::vector<std::pair<int, int>> group = ctx->groups.at(color);
  std::sort(group.begin(), group.end());
  const auto it = std::find(group.begin(), group.end(),
                            std::make_pair(key, rank_));
  const int new_rank = static_cast<int>(it - group.begin());

  if (new_rank == 0) {
    // The sub-communicator registers with the world's abort hub so
    // failures anywhere wake its parked nonblocking waiters too.
    auto new_state = std::make_shared<detail::CommState>(
        static_cast<int>(group.size()), st.hub);
    st.hub->register_state(new_state);
    std::lock_guard<std::mutex> lock(ctx->mutex);
    ctx->states[color] = new_state;
  }
  phase(op_ctx);

  std::shared_ptr<detail::CommState> new_state;
  {
    std::lock_guard<std::mutex> lock(ctx->mutex);
    new_state = ctx->states.at(color);
  }
  phase(op_ctx);
  if (rank_ == 0) st.split_ctx.reset();
  return Comm(std::move(new_state), new_rank, meter_);
}

void PendingCompressedReduce::wait() {
  if (!pending()) return;
  // Take the communicator state locally: op_.wait() drops the inner op's
  // own reference, and the decode epilogue below still needs the checker
  // for charge attribution. Declared before the blocking scope so the
  // checker outlives the scope's exit hook.
  const std::shared_ptr<detail::CommState> st = std::move(state_);
  contract::Checker* ck = st ? st->checker.get() : nullptr;
  const char* op_name = scatter_ ? "ireduce_scatter_sum_compressed"
                                 : "iallreduce_sum_compressed";
  contract::BlockingScope contract_scope(ck, rank_, op_name,
                                         CommCategory::kCompressed);
  CompressBuf& buf = *buf_;
  buf_ = nullptr;
  {
    MaybePhase scope(profiler_, Phase::kDenseComm);
    op_.wait();
  }
  const int p = size_;
  const std::size_t enc = encoded_size_bytes(mode_, n_);
  MaybePhase scope(profiler_, Phase::kCompressPack);
  if (!scatter_) {
    for (int r = 0; r < p; ++r) {
      CAGNET_CHECK(
          buf.recv.chunk(r).size() == enc,
          "iallreduce_sum_compressed: ranks disagree on element count");
    }
    // Decode-sum in ascending rank order (matching the exact all-reduce's
    // per-element accumulation order), identically on every rank.
    buf.scratch.resize(n_);
    for (int r = 0; r < p; ++r) {
      const std::uint8_t* bytes = buf.recv.chunk(r).data();
      if (r == 0) {
        compress_decode(mode_, bytes, n_, out_);
      } else {
        compress_decode(mode_, bytes, n_, buf.scratch.data());
        for (std::size_t i = 0; i < n_; ++i) out_[i] += buf.scratch[i];
      }
    }
    if (ck != nullptr) {
      ck->on_charge(rank_, op_name, CommCategory::kCompressed);
    }
    meter_->add(CommCategory::kCompressed, 2.0 * ceil_log2(p),
                2.0 * static_cast<double>(enc) * (p - 1) / p / sizeof(Real));
    return;
  }
  // Reduce-scatter wire format per rank: [u64 out-length][encoded full
  // contribution]. The headers give every rank the chunk boundaries (the
  // out sizes may differ per rank); each rank decodes only its own slice
  // of every contribution.
  std::size_t my_lo = 0;
  std::size_t total_out = 0;
  for (int r = 0; r < p; ++r) {
    const auto chunk = buf.recv.chunk(r);
    CAGNET_CHECK(
        chunk.size() == sizeof(std::uint64_t) + enc,
        "ireduce_scatter_sum_compressed: ranks disagree on element count");
    std::uint64_t out_len = 0;
    std::memcpy(&out_len, chunk.data(), sizeof(out_len));
    if (r == rank_) my_lo = total_out;
    total_out += static_cast<std::size_t>(out_len);
  }
  CAGNET_CHECK(total_out == n_,
               "reduce_scatter: contribution length != sum of outputs");
  // Zero, then accumulate ranks ascending — the exact form's order.
  std::fill(out_, out_ + out_len_, Real{0});
  buf.scratch.resize(out_len_);
  for (int r = 0; r < p; ++r) {
    compress_decode_range(mode_,
                          buf.recv.chunk(r).data() + sizeof(std::uint64_t),
                          n_, my_lo, my_lo + out_len_, buf.scratch.data());
    for (std::size_t i = 0; i < out_len_; ++i) out_[i] += buf.scratch[i];
  }
  if (ck != nullptr) ck->on_charge(rank_, op_name, CommCategory::kCompressed);
  meter_->add(CommCategory::kCompressed, ceil_log2(p),
              static_cast<double>(buf.recv.data.size()) * (p - 1) / p /
                  sizeof(Real));
}

PendingCompressedReduce Comm::iallreduce_sum_compressed(
    std::span<const Real> contrib, std::span<Real> out, CompressMode mode,
    CompressBuf& buf, Profiler* profiler) {
  check_valid("iallreduce_sum_compressed");
  CAGNET_CHECK(mode != CompressMode::kOff,
               "iallreduce_sum_compressed: mode must be a lossy codec (use "
               "iallreduce_sum for exact traffic)");
  CAGNET_CHECK(contrib.size() == out.size(),
               "iallreduce_sum_compressed: contrib/out length mismatch");
  rebind_compress_buf(buf, contrib.size());
  PendingCompressedReduce op;
  op.meter_ = meter_;
  op.profiler_ = profiler;
  op.mode_ = mode;
  op.out_ = out.data();
  op.out_len_ = out.size();
  op.n_ = contrib.size();
  op.rank_ = rank_;
  op.size_ = size();
  if (size() == 1) {
    if (!out.empty() && out.data() != contrib.data()) {
      std::memcpy(out.data(), contrib.data(), out.size() * sizeof(Real));
    }
    return op;  // exact self-reduction; nothing pending, nothing charged
  }
  {
    MaybePhase scope(profiler, Phase::kCompressPack);
    buf.send.resize(encoded_size_bytes(mode, contrib.size()));
    compress_encode(mode, contrib, buf.send.data(),
                    buf.error_feedback ? &buf.residual : nullptr);
  }
  op.op_ = iallgatherv_into(std::span<const std::uint8_t>(buf.send),
                            buf.recv, CommCategory::kCompressed,
                            /*charged=*/false);
  op.state_ = state_;
  op.buf_ = &buf;
  return op;
}

PendingCompressedReduce Comm::ireduce_scatter_sum_compressed(
    std::span<const Real> contrib, std::span<Real> out, CompressMode mode,
    CompressBuf& buf, Profiler* profiler) {
  check_valid("ireduce_scatter_sum_compressed");
  CAGNET_CHECK(mode != CompressMode::kOff,
               "ireduce_scatter_sum_compressed: mode must be a lossy codec "
               "(use ireduce_scatter_sum for exact traffic)");
  rebind_compress_buf(buf, contrib.size());
  PendingCompressedReduce op;
  op.meter_ = meter_;
  op.profiler_ = profiler;
  op.mode_ = mode;
  op.scatter_ = true;
  op.out_ = out.data();
  op.out_len_ = out.size();
  op.n_ = contrib.size();
  op.rank_ = rank_;
  op.size_ = size();
  if (size() == 1) {
    CAGNET_CHECK(out.size() == contrib.size(),
                 "reduce_scatter: contribution length != sum of outputs");
    if (!out.empty() && out.data() != contrib.data()) {
      std::memcpy(out.data(), contrib.data(), out.size() * sizeof(Real));
    }
    return op;
  }
  {
    MaybePhase scope(profiler, Phase::kCompressPack);
    const std::size_t enc = encoded_size_bytes(mode, contrib.size());
    buf.send.resize(sizeof(std::uint64_t) + enc);
    const std::uint64_t out_len = out.size();
    std::memcpy(buf.send.data(), &out_len, sizeof(out_len));
    compress_encode(mode, contrib, buf.send.data() + sizeof(std::uint64_t),
                    buf.error_feedback ? &buf.residual : nullptr);
  }
  op.op_ = iallgatherv_into(std::span<const std::uint8_t>(buf.send),
                            buf.recv, CommCategory::kCompressed,
                            /*charged=*/false);
  op.state_ = state_;
  op.buf_ = &buf;
  return op;
}

void Comm::allreduce_sum_compressed(std::span<Real> data, CompressMode mode,
                                    CompressBuf& buf, Profiler* profiler) {
  check_valid("allreduce_sum_compressed");
  PendingCompressedReduce op = iallreduce_sum_compressed(
      std::span<const Real>(data.data(), data.size()), data, mode, buf,
      profiler);
  if (!op.pending()) return;
  const std::uint64_t ticket = op.ticket();
  op.wait();
  // Trailing release rendezvous: the blocking contract lets the caller
  // rewrite buf.send (e.g. the next layer's encode) immediately, so wait
  // until every peer has copied this one.
  MaybePhase scope(profiler, Phase::kDenseComm);
  quiesce_op(ticket);
}

void Comm::reduce_scatter_sum_compressed(std::span<const Real> contrib,
                                         std::span<Real> out,
                                         CompressMode mode, CompressBuf& buf,
                                         Profiler* profiler) {
  check_valid("reduce_scatter_sum_compressed");
  PendingCompressedReduce op =
      ireduce_scatter_sum_compressed(contrib, out, mode, buf, profiler);
  if (!op.pending()) return;
  const std::uint64_t ticket = op.ticket();
  op.wait();
  MaybePhase scope(profiler, Phase::kDenseComm);
  quiesce_op(ticket);
}

namespace {

/// True for the "a peer rank failed" form of CommAborted: a casualty of
/// someone else's failure, not a root cause. Which rank wins the race to
/// run_world's error slot is timing-dependent (under TSan's scheduling a
/// casualty regularly beats the rank that actually died), so run_world
/// keeps the first *root-cause* error it sees and only reports a casualty
/// when nothing better ever arrives.
bool is_secondary_abort(const std::exception_ptr& error) noexcept {
  try {
    std::rethrow_exception(error);
  } catch (const CommAborted& e) {
    return e.cause() == "a peer rank failed";
  } catch (...) {
    return false;
  }
}

}  // namespace

void run_world(int p, const std::function<void(Comm&)>& fn,
               std::vector<CostMeter>* meters_out) {
  CAGNET_CHECK(p >= 1, "world size must be at least 1");
  auto hub = std::make_shared<detail::AbortHub>();
  // Capture the process-global fault schedule for this world's lifetime
  // (null keeps the transport seam inert). The lazy CAGNET_FAULT parse
  // happens here, on the launching thread, so a malformed spec is a
  // catchable Error at the run_world call site.
  hub->fault = fault_plan();
  auto state = std::make_shared<detail::CommState>(p, hub);
  hub->register_state(state);
  std::vector<CostMeter> meters(static_cast<std::size_t>(p));
  // P rank threads run concurrently; split the kernel thread budget among
  // them so nested SpMM parallelism cannot oversubscribe the host.
  ScopedThreadBudgetShare budget_share(p);

  std::exception_ptr first_error = nullptr;
  bool first_error_secondary = false;
  std::mutex error_mutex;

  // The rank threads ARE the simulated machine, not pool work — the one
  // sanctioned raw-thread site. lint:allow(naked-thread)
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(state, r, &meters[static_cast<std::size_t>(r)]);
      try {
        fn(comm);
      } catch (...) {
        // Classify the exception on its OWN thread, before publishing:
        // each rank owns its in-flight exception object, so reading it
        // here is race-free, whereas rethrowing the stored first_error
        // would read another rank's exception object while that rank's
        // unwind may be freeing it. The flag travels with the pointer.
        const bool mine_secondary =
            is_secondary_abort(std::current_exception());
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error || (first_error_secondary && !mine_secondary)) {
            first_error = std::current_exception();
            first_error_secondary = mine_secondary;
          }
        }
        // Poison every registered communicator state: the abort flag goes
        // up, then every channel counter and phase gate is bumped and
        // notified, so peers parked anywhere — nonblocking waits,
        // per-source drains, or blocking collectives' rendezvous, on the
        // world or any split sub-communicator — wake, observe the flag,
        // and unwind with a typed CommAborted.
        hub->poison();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  // Teardown audit (contract checker armed, non-abort path only — a
  // poisoned world tears down mid-op by design): every communicator this
  // world created, splits included, must have retired all its posted ops.
  {
    std::lock_guard<std::mutex> lock(hub->mutex);
    for (const auto& checked : hub->checked_states) {
      checked->checker->verify_teardown();
    }
  }
  if (meters_out) *meters_out = std::move(meters);
}

}  // namespace cagnet
