// Row-major dense matrix: the H, Z, G, W, Y operands of GNN training.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/util/error.hpp"
#include "src/util/rng.hpp"
#include "src/util/types.hpp"

namespace cagnet {

/// Dense row-major matrix of Real. Activations H^l are (n x f), weights W^l
/// are (f_in x f_out). Row-major keeps SpMM's inner axpy over a contiguous
/// feature row, which is the layout cuSPARSE csrmm2 effectively consumed in
/// the paper's implementation.
class Matrix {
 public:
  Matrix() = default;
  Matrix(Index rows, Index cols) : rows_(rows), cols_(cols) {
    CAGNET_CHECK(rows >= 0 && cols >= 0, "negative matrix dimension");
    data_.assign(static_cast<std::size_t>(rows * cols), Real{0});
  }

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index size() const { return rows_ * cols_; }
  bool empty() const { return data_.empty(); }

  Real& operator()(Index i, Index j) {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  Real operator()(Index i, Index j) const {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  Real* data() { return data_.data(); }
  const Real* data() const { return data_.data(); }

  std::span<Real> row(Index i) {
    return {data_.data() + i * cols_, static_cast<std::size_t>(cols_)};
  }
  std::span<const Real> row(Index i) const {
    return {data_.data() + i * cols_, static_cast<std::size_t>(cols_)};
  }

  std::span<Real> flat() { return {data_.data(), data_.size()}; }
  std::span<const Real> flat() const { return {data_.data(), data_.size()}; }

  void set_zero() { std::fill(data_.begin(), data_.end(), Real{0}); }
  void fill(Real v) { std::fill(data_.begin(), data_.end(), v); }

  /// Reshape to (rows x cols), reusing the existing allocation when the
  /// capacity suffices — the workspace primitive of the allocation-free
  /// hot path. Contents are unspecified afterwards; callers must overwrite
  /// (or call set_zero) before reading.
  void resize(Index rows, Index cols) {
    CAGNET_CHECK(rows >= 0 && cols >= 0, "negative matrix dimension");
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<std::size_t>(rows * cols));
  }

  /// Uniform values in [lo, hi) from the given stream.
  void fill_uniform(Rng& rng, Real lo, Real hi);

  /// Glorot/Xavier-uniform init for a (fan_in x fan_out) weight matrix:
  /// U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out))).
  void fill_glorot(Rng& rng);

  /// Copy `src` into this matrix with its (0,0) at (row0, col0).
  void set_block(Index row0, Index col0, const Matrix& src);

  /// Extract the block of shape (rows x cols) anchored at (row0, col0).
  Matrix block(Index row0, Index col0, Index rows, Index cols) const;

  /// block() into a caller-owned matrix whose storage is reused.
  void block_into(Index row0, Index col0, Index rows, Index cols,
                  Matrix& out) const;

  /// Out-of-place transpose.
  Matrix transposed() const;

  /// Frobenius norm.
  Real frobenius_norm() const;

  /// max_ij |a_ij - b_ij|; matrices must be same shape.
  static Real max_abs_diff(const Matrix& a, const Matrix& b);

  /// True if shapes match and all entries differ by at most atol.
  static bool allclose(const Matrix& a, const Matrix& b, Real atol);

  std::string shape_string() const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Real> data_;
};

}  // namespace cagnet
