#include "src/dense/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace cagnet {

void Matrix::fill_uniform(Rng& rng, Real lo, Real hi) {
  for (auto& v : data_) v = static_cast<Real>(rng.next_double(lo, hi));
}

void Matrix::fill_glorot(Rng& rng) {
  const Real bound = std::sqrt(Real{6} / static_cast<Real>(rows_ + cols_));
  fill_uniform(rng, -bound, bound);
}

void Matrix::set_block(Index row0, Index col0, const Matrix& src) {
  CAGNET_CHECK(row0 >= 0 && col0 >= 0 && row0 + src.rows() <= rows_ &&
                   col0 + src.cols() <= cols_,
               "set_block out of range");
  for (Index i = 0; i < src.rows(); ++i) {
    const auto srow = src.row(i);
    std::copy(srow.begin(), srow.end(),
              data_.begin() + (row0 + i) * cols_ + col0);
  }
}

Matrix Matrix::block(Index row0, Index col0, Index rows, Index cols) const {
  Matrix out;
  block_into(row0, col0, rows, cols, out);
  return out;
}

void Matrix::block_into(Index row0, Index col0, Index rows, Index cols,
                        Matrix& out) const {
  CAGNET_CHECK(row0 >= 0 && col0 >= 0 && row0 + rows <= rows_ &&
                   col0 + cols <= cols_,
               "block out of range");
  CAGNET_CHECK(&out != this, "block_into cannot alias its source");
  out.resize(rows, cols);
  for (Index i = 0; i < rows; ++i) {
    const Real* src = data_.data() + (row0 + i) * cols_ + col0;
    std::copy(src, src + cols, out.data() + i * cols);
  }
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (Index i = 0; i < rows_; ++i) {
    for (Index j = 0; j < cols_; ++j) {
      out(j, i) = (*this)(i, j);
    }
  }
  return out;
}

Real Matrix::frobenius_norm() const {
  Real sum = 0;
  for (Real v : data_) sum += v * v;
  return std::sqrt(sum);
}

Real Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  CAGNET_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
               "max_abs_diff shape mismatch: " + a.shape_string() + " vs " +
                   b.shape_string());
  Real worst = 0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    worst = std::max(worst, std::abs(a.data_[i] - b.data_[i]));
  }
  return worst;
}

bool Matrix::allclose(const Matrix& a, const Matrix& b, Real atol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return max_abs_diff(a, b) <= atol;
}

std::string Matrix::shape_string() const {
  std::ostringstream os;
  os << "(" << rows_ << " x " << cols_ << ")";
  return os.str();
}

}  // namespace cagnet
