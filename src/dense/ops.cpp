#include "src/dense/ops.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/parallel.hpp"

namespace cagnet {

namespace {

void check_same_shape(const Matrix& a, const Matrix& b, const char* what) {
  CAGNET_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
               std::string(what) + " shape mismatch: " + a.shape_string() +
                   " vs " + b.shape_string());
}

}  // namespace

void relu(const Matrix& z, Matrix& out) {
  check_same_shape(z, out, "relu");
  const auto src = z.flat();
  auto dst = out.flat();
  parallel_for_elements(
      static_cast<Index>(src.size()), [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) {
      dst[static_cast<std::size_t>(i)] =
          src[static_cast<std::size_t>(i)] > Real{0}
              ? src[static_cast<std::size_t>(i)]
              : Real{0};
    }
  });
}

void relu_backward(const Matrix& g, const Matrix& z, Matrix& out) {
  check_same_shape(g, z, "relu_backward");
  check_same_shape(g, out, "relu_backward");
  const auto gs = g.flat();
  const auto zs = z.flat();
  auto dst = out.flat();
  parallel_for_elements(
      static_cast<Index>(gs.size()), [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) {
      dst[static_cast<std::size_t>(i)] =
          zs[static_cast<std::size_t>(i)] > Real{0}
              ? gs[static_cast<std::size_t>(i)]
              : Real{0};
    }
  });
}

void log_softmax_rows(const Matrix& z, Matrix& out) {
  check_same_shape(z, out, "log_softmax");
  parallel_for(
      z.rows(),
      plan_chunks(static_cast<double>(z.size()), kMinElemsPerChunk, z.rows()),
      [&](Index r0, Index r1) {
        for (Index i = r0; i < r1; ++i) {
          const auto row = z.row(i);
          auto dst = out.row(i);
          const Real mx = *std::max_element(row.begin(), row.end());
          Real sum = 0;
          for (std::size_t j = 0; j < row.size(); ++j) {
            sum += std::exp(row[j] - mx);
          }
          const Real lse = mx + std::log(sum);
          for (std::size_t j = 0; j < row.size(); ++j) dst[j] = row[j] - lse;
        }
      });
}

void log_softmax_backward(const Matrix& g, const Matrix& log_probs,
                          Matrix& out) {
  check_same_shape(g, log_probs, "log_softmax_backward");
  check_same_shape(g, out, "log_softmax_backward");
  parallel_for(
      g.rows(),
      plan_chunks(static_cast<double>(g.size()), kMinElemsPerChunk, g.rows()),
      [&](Index r0, Index r1) {
        for (Index i = r0; i < r1; ++i) {
          const auto grow = g.row(i);
          const auto lrow = log_probs.row(i);
          auto dst = out.row(i);
          Real gsum = 0;
          for (Real v : grow) gsum += v;
          for (std::size_t j = 0; j < grow.size(); ++j) {
            dst[j] = grow[j] - std::exp(lrow[j]) * gsum;
          }
        }
      });
}

Real nll_loss(const Matrix& log_probs, std::span<const Index> labels) {
  CAGNET_CHECK(static_cast<Index>(labels.size()) == log_probs.rows(),
               "nll_loss: one label per row required");
  Real total = 0;
  Index count = 0;
  for (Index i = 0; i < log_probs.rows(); ++i) {
    if (labels[i] < 0) continue;
    CAGNET_CHECK(labels[i] < log_probs.cols(), "label out of range");
    total -= log_probs(i, labels[i]);
    ++count;
  }
  return count > 0 ? total / static_cast<Real>(count) : Real{0};
}

void nll_loss_backward(const Matrix& log_probs, std::span<const Index> labels,
                       Matrix& grad) {
  CAGNET_CHECK(static_cast<Index>(labels.size()) == log_probs.rows(),
               "nll_loss_backward: one label per row required");
  check_same_shape(log_probs, grad, "nll_loss_backward");
  grad.set_zero();
  Index count = 0;
  for (Index i = 0; i < log_probs.rows(); ++i) {
    if (labels[i] >= 0) ++count;
  }
  if (count == 0) return;
  const Real scale = Real{-1} / static_cast<Real>(count);
  for (Index i = 0; i < log_probs.rows(); ++i) {
    if (labels[i] >= 0) grad(i, labels[i]) = scale;
  }
}

void axpy(Real alpha, const Matrix& x, Matrix& y) {
  check_same_shape(x, y, "axpy");
  const auto xs = x.flat();
  auto ys = y.flat();
  parallel_for_elements(
      static_cast<Index>(xs.size()), [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) {
      ys[static_cast<std::size_t>(i)] +=
          alpha * xs[static_cast<std::size_t>(i)];
    }
  });
}

void hadamard(const Matrix& a, const Matrix& b, Matrix& out) {
  check_same_shape(a, b, "hadamard");
  check_same_shape(a, out, "hadamard");
  const auto as = a.flat();
  const auto bs = b.flat();
  auto dst = out.flat();
  parallel_for_elements(
      static_cast<Index>(as.size()), [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) {
      dst[static_cast<std::size_t>(i)] = as[static_cast<std::size_t>(i)] *
                                         bs[static_cast<std::size_t>(i)];
    }
  });
}

std::vector<Index> argmax_rows(const Matrix& m) {
  std::vector<Index> out(static_cast<std::size_t>(m.rows()));
  for (Index i = 0; i < m.rows(); ++i) {
    const auto row = m.row(i);
    out[i] = static_cast<Index>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return out;
}

Real accuracy(const Matrix& log_probs, std::span<const Index> labels) {
  CAGNET_CHECK(static_cast<Index>(labels.size()) == log_probs.rows(),
               "accuracy: one label per row required");
  const auto preds = argmax_rows(log_probs);
  Index hit = 0;
  Index total = 0;
  for (Index i = 0; i < log_probs.rows(); ++i) {
    if (labels[i] < 0) continue;
    ++total;
    if (preds[i] == labels[i]) ++hit;
  }
  return total > 0 ? static_cast<Real>(hit) / static_cast<Real>(total)
                   : Real{0};
}

}  // namespace cagnet
