// Elementwise / rowwise dense kernels used by GNN forward and backward:
// activations, their derivatives, log-softmax, and negative log-likelihood.
#pragma once

#include <span>
#include <vector>

#include "src/dense/matrix.hpp"

namespace cagnet {

/// out = max(z, 0), elementwise. out may alias z.
void relu(const Matrix& z, Matrix& out);

/// out = g ⊙ relu'(z): passes g where z > 0, zero elsewhere.
void relu_backward(const Matrix& g, const Matrix& z, Matrix& out);

/// Rowwise log-softmax: out[i,:] = z[i,:] - log(sum_j exp(z[i,j])).
/// Numerically stabilized with a rowwise max shift. This is the paper's
/// non-elementwise σ for the output layer (its row dependence is what forces
/// the all-gather in the 2D/3D algorithms).
void log_softmax_rows(const Matrix& z, Matrix& out);

/// Gradient of log-softmax given upstream dL/dout:
/// out[i,j] = g[i,j] - exp(ls[i,j]) * sum_k g[i,k], where ls = log_softmax(z).
void log_softmax_backward(const Matrix& g, const Matrix& log_probs,
                          Matrix& out);

/// Mean NLL loss over labeled rows: -mean_i log_probs[i, label[i]].
/// Rows with label < 0 are ignored (mask), matching a train-split mask.
Real nll_loss(const Matrix& log_probs, std::span<const Index> labels);

/// dL/d(log_probs) for mean-NLL: -1/m at (i, label[i]) for labeled rows.
void nll_loss_backward(const Matrix& log_probs, std::span<const Index> labels,
                       Matrix& grad);

/// y += alpha * x, elementwise over whole matrices (same shape).
void axpy(Real alpha, const Matrix& x, Matrix& y);

/// out = a ⊙ b (Hadamard product). out may alias a or b.
void hadamard(const Matrix& a, const Matrix& b, Matrix& out);

/// argmax per row; used for accuracy.
std::vector<Index> argmax_rows(const Matrix& m);

/// Fraction of labeled rows where argmax(pred row) == label.
Real accuracy(const Matrix& log_probs, std::span<const Index> labels);

}  // namespace cagnet
