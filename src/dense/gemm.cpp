#include "src/dense/gemm.hpp"

namespace cagnet {
namespace {

// Tile edge for the k-blocking; sized so a B tile row set stays in L1/L2.
constexpr Index kTile = 64;

Index op_rows(Trans t, const Matrix& m) {
  return t == Trans::kNo ? m.rows() : m.cols();
}
Index op_cols(Trans t, const Matrix& m) {
  return t == Trans::kNo ? m.cols() : m.rows();
}

}  // namespace

void gemm(Trans trans_a, Trans trans_b, Real alpha, const Matrix& a,
          const Matrix& b, Real beta, Matrix& c) {
  const Index m = op_rows(trans_a, a);
  const Index k = op_cols(trans_a, a);
  const Index k2 = op_rows(trans_b, b);
  const Index n = op_cols(trans_b, b);
  CAGNET_CHECK(k == k2, "gemm inner-dimension mismatch: " + a.shape_string() +
                            " x " + b.shape_string());
  CAGNET_CHECK(c.rows() == m && c.cols() == n,
               "gemm output shape mismatch: got " + c.shape_string());

  if (beta == Real{0}) {
    c.set_zero();
  } else if (beta != Real{1}) {
    for (Real& v : c.flat()) v *= beta;
  }
  if (alpha == Real{0} || m == 0 || n == 0 || k == 0) return;

  const auto a_at = [&](Index i, Index p) {
    return trans_a == Trans::kNo ? a(i, p) : a(p, i);
  };

  // i-k-j with k tiling. When B is not transposed the innermost loop is a
  // contiguous axpy over B's row p and C's row i; when B is transposed we
  // fall back to a dot-product form that still streams B's row j.
  if (trans_b == Trans::kNo) {
    for (Index i = 0; i < m; ++i) {
      Real* crow = c.data() + i * n;
      for (Index p0 = 0; p0 < k; p0 += kTile) {
        const Index p1 = std::min(p0 + kTile, k);
        for (Index p = p0; p < p1; ++p) {
          const Real av = alpha * a_at(i, p);
          if (av == Real{0}) continue;
          const Real* brow = b.data() + p * n;
          for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  } else {
    for (Index i = 0; i < m; ++i) {
      Real* crow = c.data() + i * n;
      for (Index j = 0; j < n; ++j) {
        // B stored (n x k); its row j is the j-th column of op(B).
        const Real* brow = b.data() + j * k;
        Real acc = 0;
        for (Index p = 0; p < k; ++p) acc += a_at(i, p) * brow[p];
        crow[j] += alpha * acc;
      }
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b, Trans trans_a, Trans trans_b) {
  Matrix c(op_rows(trans_a, a), op_cols(trans_b, b));
  gemm(trans_a, trans_b, Real{1}, a, b, Real{0}, c);
  return c;
}

}  // namespace cagnet
