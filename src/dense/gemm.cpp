#include "src/dense/gemm.hpp"

#include <algorithm>

#include "src/util/parallel.hpp"

namespace cagnet {
namespace {

// Tile edge for the k-blocking; sized so a B tile row set stays in L1/L2.
constexpr Index kTile = 64;

/// Flops below which threading overhead outweighs the kernel itself.
constexpr double kGemmMinFlopsPerChunk = 1 << 18;

Index op_rows(Trans t, const Matrix& m) {
  return t == Trans::kNo ? m.rows() : m.cols();
}
Index op_cols(Trans t, const Matrix& m) {
  return t == Trans::kNo ? m.cols() : m.rows();
}

/// A-not-transposed, B-not-transposed rows [i0, i1): i-k-j with k tiling
/// and a 4-row register block — four C rows accumulate from one streamed B
/// row, quartering the B traffic. Every C element still accumulates its
/// k-products in ascending-p order, one add per product, so the result is
/// bitwise identical to the single-row form for any row partition.
void gemm_block_nn(Index i0, Index i1, Real alpha, const Matrix& a,
                   const Matrix& b, Matrix& c, Index k, Index n) {
  const Real* adata = a.data();
  const Real* bdata = b.data();
  Real* cdata = c.data();
  Index i = i0;
  for (; i + 4 <= i1; i += 4) {
    Real* c0 = cdata + i * n;
    Real* c1 = c0 + n;
    Real* c2 = c1 + n;
    Real* c3 = c2 + n;
    const Real* a0 = adata + i * k;
    const Real* a1 = a0 + k;
    const Real* a2 = a1 + k;
    const Real* a3 = a2 + k;
    for (Index p0 = 0; p0 < k; p0 += kTile) {
      const Index p1 = std::min(p0 + kTile, k);
      for (Index p = p0; p < p1; ++p) {
        const Real* brow = bdata + p * n;
        const Real av0 = alpha * a0[p];
        const Real av1 = alpha * a1[p];
        const Real av2 = alpha * a2[p];
        const Real av3 = alpha * a3[p];
        for (Index j = 0; j < n; ++j) {
          const Real bv = brow[j];
          c0[j] += av0 * bv;
          c1[j] += av1 * bv;
          c2[j] += av2 * bv;
          c3[j] += av3 * bv;
        }
      }
    }
  }
  for (; i < i1; ++i) {
    Real* crow = cdata + i * n;
    const Real* arow = adata + i * k;
    for (Index p0 = 0; p0 < k; p0 += kTile) {
      const Index p1 = std::min(p0 + kTile, k);
      for (Index p = p0; p < p1; ++p) {
        const Real av = alpha * arow[p];
        const Real* brow = bdata + p * n;
        for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

/// One contiguous row block [i0, i1) of C = alpha * op(A) op(B) + C; the
/// beta pass already ran. Row blocks write disjoint C rows, so any
/// partition of [0, m) produces bitwise-identical output.
void gemm_rows(Index i0, Index i1, Trans trans_a, Trans trans_b, Real alpha,
               const Matrix& a, const Matrix& b, Matrix& c, Index k,
               Index n) {
  if (trans_a == Trans::kNo && trans_b == Trans::kNo) {
    gemm_block_nn(i0, i1, alpha, a, b, c, k, n);
    return;
  }
  if (trans_a == Trans::kYes && trans_b == Trans::kNo) {
    // A transposed (the H^T U weight-gradient product): element (p, i) of
    // the stored A is column i of op(A), so iterate p outermost and apply
    // rank-1 updates — both A row p and B row p stream contiguously while
    // the small C block stays hot. Each C element still accumulates its
    // products in ascending-p order. Post-ReLU operands carry many exact
    // zeros, so the zero skip pays for itself.
    const Index m = a.cols();
    const Real* adata = a.data();
    const Real* bdata = b.data();
    Real* cdata = c.data();
    for (Index p = 0; p < k; ++p) {
      const Real* arow = adata + p * m;
      const Real* brow = bdata + p * n;
      for (Index i = i0; i < i1; ++i) {
        const Real av = alpha * arow[i];
        if (av == Real{0}) continue;
        Real* crow = cdata + i * n;
        for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
    return;
  }
  // Remaining cases have B transposed: dot-product form streaming B's
  // row j (the j-th column of op(B)).
  const auto a_at = [&](Index i, Index p) {
    return trans_a == Trans::kNo ? a(i, p) : a(p, i);
  };
  for (Index i = i0; i < i1; ++i) {
    Real* crow = c.data() + i * n;
    for (Index j = 0; j < n; ++j) {
      const Real* brow = b.data() + j * k;
      Real acc = 0;
      for (Index p = 0; p < k; ++p) acc += a_at(i, p) * brow[p];
      crow[j] += alpha * acc;
    }
  }
}

}  // namespace

void gemm(Trans trans_a, Trans trans_b, Real alpha, const Matrix& a,
          const Matrix& b, Real beta, Matrix& c) {
  const Index m = op_rows(trans_a, a);
  const Index k = op_cols(trans_a, a);
  const Index k2 = op_rows(trans_b, b);
  const Index n = op_cols(trans_b, b);
  CAGNET_CHECK(k == k2, "gemm inner-dimension mismatch: " + a.shape_string() +
                            " x " + b.shape_string());
  CAGNET_CHECK(c.rows() == m && c.cols() == n,
               "gemm output shape mismatch: got " + c.shape_string());

  const bool multiply = alpha != Real{0} && m > 0 && n > 0 && k > 0;
  const double flops = 2.0 * static_cast<double>(m) *
                       static_cast<double>(k) * static_cast<double>(n);
  const int chunks =
      multiply ? plan_chunks(flops, kGemmMinFlopsPerChunk, m) : 1;

  parallel_for(m, chunks, [&](Index i0, Index i1) {
    // Per-row beta pass inside the chunk keeps C rows hot for the
    // accumulation that follows.
    if (beta == Real{0}) {
      std::fill(c.data() + i0 * n, c.data() + i1 * n, Real{0});
    } else if (beta != Real{1}) {
      Real* row = c.data() + i0 * n;
      const Index len = (i1 - i0) * n;
      for (Index j = 0; j < len; ++j) row[j] *= beta;
    }
    if (multiply) gemm_rows(i0, i1, trans_a, trans_b, alpha, a, b, c, k, n);
  });
}

Matrix matmul(const Matrix& a, const Matrix& b, Trans trans_a, Trans trans_b) {
  Matrix c(op_rows(trans_a, a), op_cols(trans_b, b));
  gemm(trans_a, trans_b, Real{1}, a, b, Real{0}, c);
  return c;
}

}  // namespace cagnet
