// Local dense matrix multiplication (the paper's GEMM, reported under "misc").
#pragma once

#include "src/dense/matrix.hpp"

namespace cagnet {

/// Whether an operand enters the product transposed.
enum class Trans { kNo, kYes };

/// C = alpha * op(A) * op(B) + beta * C.
///
/// op(A) is (m x k), op(B) is (k x n), C must be (m x n). Cache-blocked
/// i-k-j ordering so the innermost loop streams rows of B and C.
void gemm(Trans trans_a, Trans trans_b, Real alpha, const Matrix& a,
          const Matrix& b, Real beta, Matrix& c);

/// Convenience allocating form: returns op(A) * op(B).
Matrix matmul(const Matrix& a, const Matrix& b, Trans trans_a = Trans::kNo,
              Trans trans_b = Trans::kNo);

}  // namespace cagnet
