// Synthetic analogs of the paper's Table VI datasets.
//
// Reddit, Amazon, and the HipMCL protein network are not bundled; instead
// each is regenerated as a scale-free R-MAT graph matching the paper's
// vertex/edge ratio (average degree), feature width, and label count at a
// configurable scale. The paper itself fills Amazon/Protein features with
// random values ("we opt to randomly generate feature values for
// simplicity... this does not affect performance"), which is exactly what we
// do for all three.
#pragma once

#include <string>
#include <vector>

#include "src/graph/graph.hpp"

namespace cagnet {

/// One row of the paper's Table VI.
struct DatasetSpec {
  std::string name;
  Index vertices = 0;
  Index edges = 0;  ///< directed edge count as reported (with self loops)
  Index features = 0;
  Index labels = 0;

  double avg_degree() const {
    return vertices > 0
               ? static_cast<double>(edges) / static_cast<double>(vertices)
               : 0.0;
  }
};

/// The three Table VI rows: reddit, amazon, protein.
const std::vector<DatasetSpec>& paper_datasets();

/// Spec lookup by name; throws on unknown name.
const DatasetSpec& dataset_spec(const std::string& name);

struct SyntheticOptions {
  /// Fraction of the paper's vertex count to generate (edges scale along to
  /// preserve average degree). 1.0 regenerates full Table VI sizes.
  double scale = 1.0 / 64;
  std::uint64_t seed = 42;
  /// Cap on feature width, to let tests shrink the dense dimension too;
  /// <= 0 keeps the paper's width.
  Index max_features = 0;
  /// Apply the load-balancing random vertex permutation.
  bool permute = true;
};

/// Generate the synthetic analog of a Table VI dataset: R-MAT topology with
/// matched average degree, GCN-normalized adjacency, uniform random
/// features, uniform random labels over the spec's label count, every
/// vertex labeled (the paper trains on the whole graph for amazon/protein).
Graph make_synthetic(const DatasetSpec& spec, const SyntheticOptions& options);

/// make_synthetic(dataset_spec(name), options).
Graph make_dataset(const std::string& name, const SyntheticOptions& options);

}  // namespace cagnet
