#include "src/graph/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "src/sparse/generate.hpp"
#include "src/util/error.hpp"

namespace cagnet {

const std::vector<DatasetSpec>& paper_datasets() {
  // Table VI of the paper.
  static const std::vector<DatasetSpec> specs = {
      {"reddit", 232965, 114848857, 602, 41},
      {"amazon", 9430088, 231594310, 300, 24},
      {"protein", 8745542, 1058120062, 128, 256},
  };
  return specs;
}

const DatasetSpec& dataset_spec(const std::string& name) {
  for (const DatasetSpec& s : paper_datasets()) {
    if (s.name == name) return s;
  }
  throw Error("unknown dataset: " + name +
              " (expected reddit, amazon, or protein)");
}

Graph make_synthetic(const DatasetSpec& spec, const SyntheticOptions& options) {
  CAGNET_CHECK(options.scale > 0 && options.scale <= 1.0,
               "scale must be in (0, 1]");
  const Index n = std::max<Index>(
      64, static_cast<Index>(std::llround(
              static_cast<double>(spec.vertices) * options.scale)));
  // Preserve the average degree. Table VI counts both directions of each
  // undirected edge, and gcn_normalize symmetrizes, so generate half the
  // target as directed edges. Cap at a near-dense budget so heavily
  // downscaled dense-ish graphs (reddit at tiny scale) remain generable.
  const auto degree = spec.avg_degree();
  const Index edges =
      std::min(static_cast<Index>(0.5 * degree * static_cast<double>(n)),
               n * (n - 1) / 2);

  Rng rng(options.seed);
  Rng topo_rng = rng.split(1);
  Rng feat_rng = rng.split(2);
  Rng label_rng = rng.split(3);
  Rng perm_rng = rng.split(4);

  Coo coo = rmat(n, edges, topo_rng);
  if (options.permute) {
    coo.permute(random_permutation(n, perm_rng));
  }

  Graph g;
  g.name = spec.name;
  // Undirected semantics: symmetrize, then the GCN normalization adds self
  // loops and applies D^-1/2 (A0 + I) D^-1/2.
  g.adjacency = gcn_normalize(std::move(coo), /*symmetrize=*/true);

  const Index f = options.max_features > 0
                      ? std::min(options.max_features, spec.features)
                      : spec.features;
  g.features = Matrix(n, f);
  g.features.fill_uniform(feat_rng, Real{-1}, Real{1});

  g.num_classes = spec.labels;
  g.labels.resize(static_cast<std::size_t>(n));
  for (auto& label : g.labels) {
    label = static_cast<Index>(
        label_rng.next_below(static_cast<std::uint64_t>(spec.labels)));
  }
  return g;
}

Graph make_dataset(const std::string& name, const SyntheticOptions& options) {
  return make_synthetic(dataset_spec(name), options);
}

}  // namespace cagnet
