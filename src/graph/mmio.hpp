// Matrix Market I/O: load real graphs into the pipeline and export
// generated ones. Supports the `matrix coordinate` format with
// real/integer/pattern fields and general/symmetric symmetry — the format
// the paper's datasets (e.g. the HipMCL protein network) are distributed
// in.
#pragma once

#include <iosfwd>
#include <string>

#include "src/sparse/coo.hpp"
#include "src/sparse/csr.hpp"

namespace cagnet {

/// Parse a Matrix Market stream. Pattern entries get value 1; symmetric /
/// skew-symmetric inputs are expanded to both triangles. Throws Error on
/// malformed input.
Coo read_matrix_market(std::istream& in);

/// Read from a file path.
Coo read_matrix_market_file(const std::string& path);

/// Write in `matrix coordinate real general` format (1-based indices).
void write_matrix_market(std::ostream& out, const Csr& matrix);

/// Write to a file path.
void write_matrix_market_file(const std::string& path, const Csr& matrix);

}  // namespace cagnet
