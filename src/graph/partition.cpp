#include "src/graph/partition.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <numeric>
#include <sstream>
#include <unordered_set>

#include "src/graph/graph.hpp"
#include "src/util/error.hpp"

namespace cagnet {

Partition block_partition(Index n, int parts) {
  CAGNET_CHECK(n >= 0 && parts >= 1, "bad partition arguments");
  Partition p;
  p.parts = parts;
  p.owner.resize(static_cast<std::size_t>(n));
  for (Index v = 0; v < n; ++v) {
    // Inverse of block_range: the unique q with n*q/parts <= v <
    // n*(q+1)/parts is q = floor(((v+1)*parts - 1) / n).
    p.owner[static_cast<std::size_t>(v)] = ((v + 1) * parts - 1) / n;
  }
  return p;
}

Partition random_partition(Index n, int parts, Rng& rng) {
  const std::vector<Index> perm = random_permutation(n, rng);
  Partition blocks = block_partition(n, parts);
  Partition p;
  p.parts = parts;
  p.owner.resize(static_cast<std::size_t>(n));
  for (Index v = 0; v < n; ++v) {
    p.owner[static_cast<std::size_t>(v)] =
        blocks.owner[static_cast<std::size_t>(perm[static_cast<std::size_t>(v)])];
  }
  return p;
}

Partition greedy_bfs_partition(const Csr& a, int parts, double slack) {
  CAGNET_CHECK(a.rows() == a.cols(), "greedy partitioner expects square A");
  CAGNET_CHECK(parts >= 1 && slack >= 1.0, "bad partitioner arguments");
  const Index n = a.rows();
  Partition p;
  p.parts = parts;
  p.owner.assign(static_cast<std::size_t>(n), Index{-1});

  const auto capacity = static_cast<Index>(
      slack * static_cast<double>(n) / static_cast<double>(parts) + 1);

  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();

  // Seed candidates in descending degree: hubs anchor parts rather than
  // straddling boundaries.
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});
  std::sort(order.begin(), order.end(), [&](Index x, Index y) {
    return a.row_degree(x) > a.row_degree(y);
  });

  // Simultaneous multi-seed BFS growth: parts claim one vertex per round,
  // which keeps the growth fronts comparable instead of letting the first
  // part swallow the whole dense core.
  std::vector<std::deque<Index>> frontier(static_cast<std::size_t>(parts));
  std::vector<Index> filled(static_cast<std::size_t>(parts), 0);
  Index next_seed = 0;
  Index assigned = 0;

  const auto pull_seed = [&]() -> Index {
    while (next_seed < n &&
           p.owner[static_cast<std::size_t>(
               order[static_cast<std::size_t>(next_seed)])] >= 0) {
      ++next_seed;
    }
    return next_seed < n ? order[static_cast<std::size_t>(next_seed)]
                         : Index{-1};
  };

  while (assigned < n) {
    bool progressed = false;
    for (int part = 0; part < parts && assigned < n; ++part) {
      if (filled[static_cast<std::size_t>(part)] >= capacity) continue;
      Index v = -1;
      auto& q = frontier[static_cast<std::size_t>(part)];
      while (!q.empty()) {
        const Index candidate = q.front();
        q.pop_front();
        if (p.owner[static_cast<std::size_t>(candidate)] < 0) {
          v = candidate;
          break;
        }
      }
      if (v < 0) v = pull_seed();
      if (v < 0) break;  // nothing left anywhere
      p.owner[static_cast<std::size_t>(v)] = part;
      ++filled[static_cast<std::size_t>(part)];
      ++assigned;
      progressed = true;
      for (Index e = row_ptr[v]; e < row_ptr[v + 1]; ++e) {
        const Index u = col_idx[e];
        if (p.owner[static_cast<std::size_t>(u)] < 0) q.push_back(u);
      }
    }
    if (!progressed) break;  // all remaining parts at capacity
  }
  // Leftovers (all parts capped): spill into the least-filled parts.
  for (Index v = 0; v < n; ++v) {
    if (p.owner[static_cast<std::size_t>(v)] >= 0) continue;
    const auto it = std::min_element(filled.begin(), filled.end());
    p.owner[static_cast<std::size_t>(v)] =
        static_cast<Index>(it - filled.begin());
    ++(*it);
  }

  // Neighbor-majority refinement sweeps (a light KL/FM stand-in): move a
  // vertex to the part holding most of its neighbors when that strictly
  // reduces its cut and respects the balance cap. Iterated label
  // propagation of this kind recovers community structure quickly; stop at
  // a fixed-point or after a bounded number of sweeps.
  std::vector<Index> tally(static_cast<std::size_t>(parts), 0);
  constexpr int kMaxSweeps = 12;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    Index moves = 0;
    for (Index v = 0; v < n; ++v) {
      if (row_ptr[v + 1] == row_ptr[v]) continue;
      std::fill(tally.begin(), tally.end(), Index{0});
      for (Index e = row_ptr[v]; e < row_ptr[v + 1]; ++e) {
        ++tally[static_cast<std::size_t>(
            p.owner[static_cast<std::size_t>(col_idx[e])])];
      }
      const Index current = p.owner[static_cast<std::size_t>(v)];
      Index best = current;
      for (int part = 0; part < parts; ++part) {
        if (tally[static_cast<std::size_t>(part)] >
                tally[static_cast<std::size_t>(best)] &&
            filled[static_cast<std::size_t>(part)] < capacity) {
          best = static_cast<Index>(part);
        }
      }
      if (best != current) {
        p.owner[static_cast<std::size_t>(v)] = best;
        --filled[static_cast<std::size_t>(current)];
        ++filled[static_cast<std::size_t>(best)];
        ++moves;
      }
    }
    if (moves == 0) break;
  }
  return p;
}

EdgeCutStats edge_cut(const Csr& a, const Partition& partition) {
  CAGNET_CHECK(partition.size() == a.rows(), "partition size mismatch");
  CAGNET_CHECK(a.rows() == a.cols(), "edge_cut expects square A");
  EdgeCutStats s;
  std::vector<Index> cut_per_part(static_cast<std::size_t>(partition.parts), 0);
  std::vector<std::unordered_set<Index>> remote(
      static_cast<std::size_t>(partition.parts));

  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  for (Index u = 0; u < a.rows(); ++u) {
    const Index pu = partition.owner[static_cast<std::size_t>(u)];
    for (Index q = row_ptr[u]; q < row_ptr[u + 1]; ++q) {
      const Index v = col_idx[q];
      const Index pv = partition.owner[static_cast<std::size_t>(v)];
      if (pu != pv) {
        ++s.total_cut_edges;
        ++cut_per_part[static_cast<std::size_t>(pu)];
        remote[static_cast<std::size_t>(pu)].insert(v);
      }
    }
  }
  for (int part = 0; part < partition.parts; ++part) {
    s.max_cut_edges_per_part =
        std::max(s.max_cut_edges_per_part,
                 cut_per_part[static_cast<std::size_t>(part)]);
    s.max_remote_rows_per_part =
        std::max(s.max_remote_rows_per_part,
                 static_cast<Index>(remote[static_cast<std::size_t>(part)].size()));
  }
  return s;
}

std::string to_string(const EdgeCutStats& s) {
  std::ostringstream os;
  os << "total_cut=" << s.total_cut_edges
     << " max_cut_per_part=" << s.max_cut_edges_per_part
     << " max_remote_rows=" << s.max_remote_rows_per_part;
  return os.str();
}

std::vector<Index> partition_offsets(const Partition& partition) {
  std::vector<Index> offsets(static_cast<std::size_t>(partition.parts) + 1,
                             0);
  for (Index o : partition.owner) {
    ++offsets[static_cast<std::size_t>(o) + 1];
  }
  for (std::size_t q = 1; q < offsets.size(); ++q) {
    offsets[q] += offsets[q - 1];
  }
  return offsets;
}

std::vector<Index> partition_permutation(const Partition& partition) {
  // Stable counting sort by owner: cursor[q] walks part q's output range.
  std::vector<Index> cursor = partition_offsets(partition);
  std::vector<Index> perm(partition.owner.size());
  for (Index v = 0; v < partition.size(); ++v) {
    const Index q = partition.owner[static_cast<std::size_t>(v)];
    perm[static_cast<std::size_t>(cursor[static_cast<std::size_t>(q)]++)] = v;
  }
  return perm;
}

const std::vector<PartitionerSpec>& partitioner_registry() {
  static const std::vector<PartitionerSpec> registry = [] {
    std::vector<PartitionerSpec> specs;
    specs.push_back({"block", [](const Csr& a, int parts, std::uint64_t) {
                       return block_partition(a.rows(), parts);
                     }});
    specs.push_back({"random", [](const Csr& a, int parts,
                                  std::uint64_t seed) {
                       Rng rng(seed);
                       return random_partition(a.rows(), parts, rng);
                     }});
    specs.push_back({"greedy-bfs", [](const Csr& a, int parts,
                                      std::uint64_t) {
                       return greedy_bfs_partition(a, parts);
                     }});
    return specs;
  }();
  return registry;
}

const PartitionerSpec* find_partitioner(const std::string& name) {
  for (const PartitionerSpec& spec : partitioner_registry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

const std::string& default_partitioner_name() {
  static const std::string name = [] {
    const char* v = std::getenv("CAGNET_PARTITION");
    if (v != nullptr && find_partitioner(v) != nullptr) {
      return std::string(v);
    }
    return std::string("block");
  }();
  return name;
}

}  // namespace cagnet
