#include "src/graph/mmio.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "src/util/error.hpp"

namespace cagnet {

namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

}  // namespace

Coo read_matrix_market(std::istream& in) {
  std::string line;
  CAGNET_CHECK(static_cast<bool>(std::getline(in, line)),
               "matrix market: empty input");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  CAGNET_CHECK(banner == "%%MatrixMarket", "matrix market: bad banner");
  CAGNET_CHECK(lower(object) == "matrix" && lower(format) == "coordinate",
               "matrix market: only `matrix coordinate` is supported");
  field = lower(field);
  symmetry = lower(symmetry);
  CAGNET_CHECK(field == "real" || field == "integer" || field == "pattern",
               "matrix market: unsupported field " + field);
  CAGNET_CHECK(symmetry == "general" || symmetry == "symmetric" ||
                   symmetry == "skew-symmetric",
               "matrix market: unsupported symmetry " + symmetry);

  // Skip comments, read the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  Index rows = 0, cols = 0, nnz = 0;
  size_line >> rows >> cols >> nnz;
  CAGNET_CHECK(rows > 0 && cols > 0 && nnz >= 0,
               "matrix market: bad size line");

  Coo coo(rows, cols);
  coo.reserve(static_cast<std::size_t>(symmetry == "general" ? nnz : 2 * nnz));
  for (Index e = 0; e < nnz; ++e) {
    CAGNET_CHECK(static_cast<bool>(std::getline(in, line)),
                 "matrix market: truncated entry list");
    std::istringstream entry(line);
    Index i = 0, j = 0;
    Real v = 1;
    entry >> i >> j;
    CAGNET_CHECK(!entry.fail(), "matrix market: malformed entry");
    if (field != "pattern") {
      entry >> v;
      CAGNET_CHECK(!entry.fail(), "matrix market: missing value");
    }
    CAGNET_CHECK(i >= 1 && i <= rows && j >= 1 && j <= cols,
                 "matrix market: index out of range");
    coo.add(i - 1, j - 1, v);
    if (symmetry != "general" && i != j) {
      coo.add(j - 1, i - 1, symmetry == "skew-symmetric" ? -v : v);
    }
  }
  coo.sort_and_combine();
  return coo;
}

Coo read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  CAGNET_CHECK(in.good(), "cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Csr& matrix) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by cagnet-cpp\n";
  out << matrix.rows() << " " << matrix.cols() << " " << matrix.nnz() << "\n";
  const auto row_ptr = matrix.row_ptr();
  const auto col_idx = matrix.col_idx();
  const auto vals = matrix.values();
  for (Index r = 0; r < matrix.rows(); ++r) {
    for (Index p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
      out << (r + 1) << " " << (col_idx[p] + 1) << " " << vals[p] << "\n";
    }
  }
  CAGNET_CHECK(out.good(), "matrix market: write failure");
}

void write_matrix_market_file(const std::string& path, const Csr& matrix) {
  std::ofstream out(path);
  CAGNET_CHECK(out.good(), "cannot open " + path + " for writing");
  write_matrix_market(out, matrix);
}

}  // namespace cagnet
