#include "src/graph/graph.hpp"

#include <cmath>
#include <numeric>

#include "src/util/error.hpp"

namespace cagnet {

Csr gcn_normalize(Coo adjacency, bool symmetrize) {
  CAGNET_CHECK(adjacency.rows() == adjacency.cols(),
               "gcn_normalize expects a square adjacency");
  if (symmetrize) adjacency.symmetrize();
  adjacency.add_self_loops();
  Csr a = Csr::from_coo(adjacency);

  // D is the diagonal of modified degrees: row sums of A0 + I.
  const std::vector<Real> degrees = a.row_sums();
  std::vector<Real> inv_sqrt(degrees.size());
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    CAGNET_CHECK(degrees[i] > 0,
                 "degree must be positive after self loops");
    inv_sqrt[i] = Real{1} / std::sqrt(degrees[i]);
  }
  a.scale_rows_cols(inv_sqrt, inv_sqrt);
  return a;
}

std::vector<Index> random_permutation(Index n, Rng& rng) {
  std::vector<Index> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), Index{0});
  for (Index i = n - 1; i > 0; --i) {
    const auto j =
        static_cast<Index>(rng.next_below(static_cast<std::uint64_t>(i + 1)));
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

}  // namespace cagnet
