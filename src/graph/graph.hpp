// Graph container and GCN preprocessing.
#pragma once

#include <string>
#include <vector>

#include "src/dense/matrix.hpp"
#include "src/sparse/csr.hpp"
#include "src/util/rng.hpp"

namespace cagnet {

/// A node-classification problem instance: the normalized adjacency, input
/// features H0, and per-vertex labels (label < 0 = not in the training set).
struct Graph {
  Csr adjacency;              ///< A = D^-1/2 (A0 + I) D^-1/2, n x n
  Matrix features;            ///< H0, n x f
  std::vector<Index> labels;  ///< size n
  Index num_classes = 0;
  std::string name;

  Index num_vertices() const { return adjacency.rows(); }
  Index num_edges() const { return adjacency.nnz(); }
  Index feature_dim() const { return features.cols(); }
};

/// Kipf-Welling GCN normalization: symmetrize (optional), add self loops,
/// then scale to D^-1/2 (A0 + I) D^-1/2, where D is the diagonal of modified
/// vertex degrees (row sums after adding I).
Csr gcn_normalize(Coo adjacency, bool symmetrize);

/// Uniformly random permutation of [0, n): the paper's load-balancing
/// "random vertex permutation" applied before blocking (Section I: 2D/3D
/// algorithms address load balance through random vertex permutations).
std::vector<Index> random_permutation(Index n, Rng& rng);

}  // namespace cagnet
