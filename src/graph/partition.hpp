// Vertex partitioning and the edge-cut communication metric of Section IV-A.
//
// The 1D algorithm's bandwidth term is edgecut_P(A) * f, where edgecut_P(A)
// is the maximum over processes of the number of remote dense-matrix rows a
// process must receive. The paper compares a random block distribution with
// METIS partitions (Section IV-A.8); our locality-seeking stand-in is a
// greedy BFS grower (see DESIGN.md, Substitutions).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/sparse/csr.hpp"
#include "src/util/rng.hpp"

namespace cagnet {

/// Assignment of every vertex to one of `parts` processes.
struct Partition {
  std::vector<Index> owner;  ///< size n, values in [0, parts)
  int parts = 0;

  Index size() const { return static_cast<Index>(owner.size()); }
};

/// Contiguous block partition: vertex v belongs to part v*P/n-ish (the
/// paper's default 1D layout after an optional random permutation).
Partition block_partition(Index n, int parts);

/// Random balanced partition: a random permutation chopped into equal
/// blocks. This is the "random block row distribution" baseline.
Partition random_partition(Index n, int parts, Rng& rng);

/// Greedy BFS partitioner (METIS stand-in): grows parts from high-degree
/// seeds along edges until each reaches its capacity ceil(n/parts * slack).
Partition greedy_bfs_partition(const Csr& a, int parts, double slack = 1.03);

/// Communication metrics for the 1D algorithm under a given partition.
struct EdgeCutStats {
  /// Edges (u, v) with owner[u] != owner[v] (the paper's "total
  /// communication" proxy, 3,258,385 vs 11,761,151 in IV-A.8).
  Index total_cut_edges = 0;
  /// Max over parts q of cut edges whose source vertex lives on q (the
  /// paper's "edges cut for the process with maximum communication").
  Index max_cut_edges_per_part = 0;
  /// Max over parts q of *distinct* remote vertices adjacent to q: this is
  /// edgecut_P(A) as defined in Section IV-A, the number of dense rows the
  /// busiest process receives.
  Index max_remote_rows_per_part = 0;
};

EdgeCutStats edge_cut(const Csr& a, const Partition& partition);

std::string to_string(const EdgeCutStats& s);

/// Per-part vertex counts of `partition` as a prefix-sum offsets vector
/// (parts+1 entries): part q owns offsets[q] .. offsets[q+1] vertices once
/// the vertices are relabeled part-contiguously (sorted_by_part).
std::vector<Index> partition_offsets(const Partition& partition);

/// The part-contiguous relabeling induced by a partition: perm[r] is the
/// original vertex at permuted position r, with vertices ordered by
/// (owner, original index) — a stable counting sort, so the relabeling is
/// deterministic. Applying it makes every part a contiguous row block
/// whose boundaries are partition_offsets.
std::vector<Index> partition_permutation(const Partition& partition);

/// Named partitioner: builds a Partition of `a`'s rows into `parts`.
/// `seed` feeds the randomized partitioners and is ignored by the
/// deterministic ones.
struct PartitionerSpec {
  std::string name;
  std::function<Partition(const Csr& a, int parts, std::uint64_t seed)> make;
};

/// All registered partitioners: "block" (contiguous ranges, the paper's
/// default layout), "random" (random balanced blocks), "greedy-bfs" (the
/// METIS stand-in). New partitioners are one entry here; DistProblem,
/// the benches, and the HaloParity tests pick them up by name.
const std::vector<PartitionerSpec>& partitioner_registry();

/// Lookup by name; nullptr when unknown.
const PartitionerSpec* find_partitioner(const std::string& name);

/// The CAGNET_PARTITION environment selection (read once at startup;
/// defaults to "block" when unset or unknown).
const std::string& default_partitioner_name();

}  // namespace cagnet
