// Minimal thread-safe logging for examples and benches.
#pragma once

#include <sstream>
#include <string>

namespace cagnet {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError };

/// Global threshold; messages below it are dropped. Defaults to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}  // namespace detail

/// Stream-style logger: LOG(kInfo) << "epoch " << e;
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { detail::log_line(level_, os_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace cagnet

#define CAGNET_LOG(level) ::cagnet::LogStream(::cagnet::LogLevel::level)
