// Fundamental scalar and index types shared by all CAGNET modules.
#pragma once

#include <cstdint>

namespace cagnet {

/// Floating-point type used for features, weights, and gradients.
///
/// The paper trains in fp32 on V100s; we default to double so that the
/// numerical-gradient checks and serial-vs-distributed parity tests have
/// headroom.  Kernels that care about fp32 behaviour (bench_spmm_local)
/// are templated and instantiate both.
using Real = double;

/// Vertex / row-column index. Signed to keep arithmetic on block offsets
/// (which can transiently go negative) well-defined.
using Index = std::int64_t;

}  // namespace cagnet
