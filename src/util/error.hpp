// Lightweight runtime checking used across the library.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace cagnet {

/// Thrown on any violated CAGNET_CHECK precondition.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void fail(const char* expr, const std::string& msg,
                       std::source_location loc);
}  // namespace detail

}  // namespace cagnet

/// Precondition check that stays on in release builds: distributed algorithms
/// silently computing garbage on a shape mismatch is far worse than the cost
/// of a compare-and-branch.
#define CAGNET_CHECK(expr, msg)                                         \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::cagnet::detail::fail(#expr, (msg),                              \
                             std::source_location::current());          \
    }                                                                   \
  } while (false)
