// Process-wide persistent thread pool and worker budget.
//
// Two layers of threading coexist here: simulated worlds run P ranks as
// threads (src/comm/comm.hpp), and local kernels (SpMM/GEMM row-block
// parallelism, the elementwise ops) run chunks of their own. Without
// coordination a P-rank world on an H-core host could create up to P*H
// kernel threads. Two mechanisms keep that in check:
//
//  - The *budget*: kernels size their chunk counts from
//    available_thread_budget(), and run_world holds a
//    ScopedThreadBudgetShare so concurrent ranks split the budget instead
//    of multiplying it.
//  - The *pool*: chunks execute on one process-wide set of persistent
//    workers (parallel_for_chunks) instead of freshly spawned
//    std::threads, so the per-call cost is a queue push, not a clone+join.
//    The calling thread always participates, so progress is guaranteed
//    even with zero workers (budget 1), and concurrent callers (the rank
//    threads of a simulated world) share the same workers.
//
// Determinism contract: chunks must write disjoint outputs and must not
// depend on execution order; under that contract every chunk count
// produces bitwise-identical results, which the kernels guarantee by
// splitting on row/element boundaries.
#pragma once

#include <functional>

#include "src/util/types.hpp"

namespace cagnet {

/// Process-wide worker-thread budget: the override if set, else
/// CAGNET_THREADS if set to a positive integer, otherwise
/// std::thread::hardware_concurrency() (read once).
int thread_budget();

/// The budget available to one caller right now: thread_budget() divided
/// by the number of concurrently active budget shares, at least 1.
int available_thread_budget();

/// Test/bench hook: force thread_budget() to n for the whole process
/// (n <= 0 restores the CAGNET_THREADS / hardware default). The pool grows
/// workers on demand up to the current budget; it never shrinks, a smaller
/// budget simply plans fewer chunks and idles the extra workers.
void override_thread_budget(int n);

/// RAII: splits the process thread budget `ways` ways for its lifetime.
/// run_world holds one sized to its world while rank threads execute.
class ScopedThreadBudgetShare {
 public:
  explicit ScopedThreadBudgetShare(int ways);
  ~ScopedThreadBudgetShare();

  ScopedThreadBudgetShare(const ScopedThreadBudgetShare&) = delete;
  ScopedThreadBudgetShare& operator=(const ScopedThreadBudgetShare&) = delete;

 private:
  int extra_;
};

/// Chunk count for a kernel invocation of `total_work` cost units: at most
/// available_thread_budget(), scaled down so every chunk keeps at least
/// `min_work_per_chunk` units (threading overhead must not outweigh the
/// kernel), clamped to [1, max_chunks].
int plan_chunks(double total_work, double min_work_per_chunk,
                Index max_chunks);

/// Run fn(c) for every c in [0, chunks) on the persistent pool. The
/// calling thread participates; the call blocks until every chunk has
/// finished and rethrows the first chunk exception. Chunks must write
/// disjoint outputs; execution order is unspecified.
void parallel_for_chunks(int chunks, const std::function<void(int)>& fn);

void parallel_for(Index n, int chunks,
                  const std::function<void(Index, Index)>& body);

inline constexpr double kMinElemsPerChunk = 1 << 16;

template <typename Body>
void parallel_for_elements(Index n, const Body& body) {
  parallel_for(n, plan_chunks(static_cast<double>(n), kMinElemsPerChunk, n),
               body);
}

}  // namespace cagnet
