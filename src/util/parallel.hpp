// Process-wide worker-thread budget for nested parallelism.
//
// Two layers of threading coexist here: simulated worlds run P ranks as
// threads (src/comm/comm.hpp), and local kernels (the SpMM row-block
// parallelism) spawn workers of their own. Without coordination a P-rank
// world on an H-core host could create up to P*H kernel threads. The
// budget is the fix: kernels size themselves from
// available_thread_budget(), and run_world holds a ScopedThreadBudgetShare
// so concurrent ranks split the budget instead of multiplying it.
#pragma once

namespace cagnet {

/// Process-wide worker-thread budget: CAGNET_THREADS if set to a positive
/// integer, otherwise std::thread::hardware_concurrency() (read once).
int thread_budget();

/// The budget available to one caller right now: thread_budget() divided
/// by the number of concurrently active budget shares, at least 1.
int available_thread_budget();

/// RAII: splits the process thread budget `ways` ways for its lifetime.
/// run_world holds one sized to its world while rank threads execute.
class ScopedThreadBudgetShare {
 public:
  explicit ScopedThreadBudgetShare(int ways);
  ~ScopedThreadBudgetShare();

  ScopedThreadBudgetShare(const ScopedThreadBudgetShare&) = delete;
  ScopedThreadBudgetShare& operator=(const ScopedThreadBudgetShare&) = delete;

 private:
  int extra_;
};

}  // namespace cagnet
