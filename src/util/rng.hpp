// Deterministic, splittable random number generation.
//
// All randomness in the library (graph generation, weight init, permutations)
// flows through Rng so that every experiment is reproducible from a single
// seed, and per-rank streams can be derived without correlation.
#pragma once

#include <array>
#include <cstdint>

#include "src/util/types.hpp"

namespace cagnet {

/// xoshiro256** by Blackman & Vigna (public domain), seeded via SplitMix64.
/// Deterministic across platforms, unlike distribution wrappers in <random>.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform real in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Derive an independent stream, e.g. one per rank or per layer.
  /// Streams derived with distinct tags are decorrelated by the SplitMix64
  /// reseeding of the child.
  Rng split(std::uint64_t tag) const {
    Rng child(0);
    child.state_ = state_;
    // Mix the tag through one SplitMix64 round into each state word.
    for (auto& word : child.state_) {
      std::uint64_t z = word + (tag + 1) * 0x9E3779B97F4A7C15ULL;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
    return child;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_ = {};
};

}  // namespace cagnet
