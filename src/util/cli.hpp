// Tiny command-line flag parser used by examples and bench harnesses.
//
// Supports `--name value` and `--name=value` forms plus boolean `--name`.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace cagnet {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  /// True if --name was passed (with or without a value).
  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  long get_int(const std::string& name, long fallback) const;
  double get_double(const std::string& name, double fallback) const;

  /// Comma-separated integer list, e.g. --procs 4,16,64.
  std::vector<long> get_int_list(const std::string& name,
                                 const std::vector<long>& fallback) const;

  /// Non-flag positional arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace cagnet
