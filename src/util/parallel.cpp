#include "src/util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cagnet {

namespace {

/// Extra concurrent claimants beyond the baseline single caller.
std::atomic<int> g_extra_shares{0};

/// override_thread_budget value; 0 means "use the environment default".
std::atomic<int> g_budget_override{0};

int env_thread_budget() {
  static const int budget = [] {
    if (const char* env = std::getenv("CAGNET_THREADS")) {
      const int v = std::atoi(env);
      if (v > 0) return v;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }();
  return budget;
}

/// One parallel_for_chunks invocation: a shared claim counter plus a
/// completion latch. Workers and the caller claim chunks with fetch_add,
/// so each chunk runs exactly once on whichever thread gets there first.
struct Batch {
  Batch(int n, const std::function<void(int)>& f)
      : fn(&f), chunks(n), remaining(n) {}

  const std::function<void(int)>* fn;
  const int chunks;
  std::atomic<int> next{0};
  std::atomic<int> remaining;
  std::mutex mutex;
  std::condition_variable done;
  std::exception_ptr error;  // guarded by mutex
};

/// The process-wide pool. Workers are lazily grown up to
/// thread_budget() - 1 (the caller is the remaining thread) and persist
/// for the process lifetime; the hot path never spawns threads.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  void run(int chunks, const std::function<void(int)>& fn) {
    ensure_workers(std::min(chunks, thread_budget()) - 1);
    if (chunks <= 1 || workers_empty()) {
      for (int c = 0; c < chunks; ++c) fn(c);
      return;
    }
    auto batch = std::make_shared<Batch>(chunks, fn);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(batch);
    }
    cv_.notify_all();
    run_chunks(*batch);  // the caller works through its own batch too
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::erase(queue_, batch);
    }
    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->done.wait(lock,
                     [&] { return batch->remaining.load(
                               std::memory_order_acquire) == 0; });
    if (batch->error) std::rethrow_exception(batch->error);
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

 private:
  ThreadPool() = default;

  bool workers_empty() {
    std::lock_guard<std::mutex> lock(mutex_);
    return workers_.empty();
  }

  void ensure_workers(int target) {
    if (target <= 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    while (static_cast<int>(workers_.size()) < target) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  static void run_chunks(Batch& batch) {
    for (;;) {
      const int c = batch.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= batch.chunks) return;
      try {
        (*batch.fn)(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(batch.mutex);
        if (!batch.error) batch.error = std::current_exception();
      }
      if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last chunk: wake the waiter. The lock pairs with the waiter's
        // predicate check so the notify cannot be lost.
        std::lock_guard<std::mutex> lock(batch.mutex);
        batch.done.notify_all();
      }
    }
  }

  void worker_loop() {
    for (;;) {
      std::shared_ptr<Batch> batch;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ set and work drained
        batch = queue_.front();
        if (batch->next.load(std::memory_order_relaxed) >= batch->chunks) {
          queue_.pop_front();  // exhausted; retire it and look again
          continue;
        }
      }
      run_chunks(*batch);
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Batch>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace

int thread_budget() {
  const int forced = g_budget_override.load(std::memory_order_relaxed);
  return forced > 0 ? forced : env_thread_budget();
}

int available_thread_budget() {
  const int claimants = 1 + g_extra_shares.load(std::memory_order_relaxed);
  return std::max(1, thread_budget() / claimants);
}

void override_thread_budget(int n) {
  g_budget_override.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

ScopedThreadBudgetShare::ScopedThreadBudgetShare(int ways)
    : extra_(std::max(ways, 1) - 1) {
  g_extra_shares.fetch_add(extra_, std::memory_order_relaxed);
}

ScopedThreadBudgetShare::~ScopedThreadBudgetShare() {
  g_extra_shares.fetch_sub(extra_, std::memory_order_relaxed);
}

int plan_chunks(double total_work, double min_work_per_chunk,
                Index max_chunks) {
  const double by_work = min_work_per_chunk > 0
                             ? total_work / min_work_per_chunk
                             : static_cast<double>(available_thread_budget());
  int chunks = available_thread_budget();
  if (by_work < static_cast<double>(chunks)) {
    chunks = static_cast<int>(by_work) + 1;
  }
  if (max_chunks < static_cast<Index>(chunks)) {
    chunks = static_cast<int>(std::max<Index>(max_chunks, 1));
  }
  return std::max(chunks, 1);
}

void parallel_for_chunks(int chunks, const std::function<void(int)>& fn) {
  if (chunks <= 1) {
    if (chunks == 1) fn(0);
    return;
  }
  ThreadPool::instance().run(chunks, fn);
}

void parallel_for(Index n, int chunks,
                  const std::function<void(Index, Index)>& body) {
  if (n <= 0) return;
  const int c = static_cast<int>(std::min<Index>(std::max(chunks, 1), n));
  if (c <= 1) {
    body(0, n);
    return;
  }
  parallel_for_chunks(c, [&](int i) {
    const Index lo = n * i / c;
    const Index hi = n * (i + 1) / c;
    if (lo < hi) body(lo, hi);
  });
}

}  // namespace cagnet
