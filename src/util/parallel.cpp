#include "src/util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

namespace cagnet {

namespace {

/// Extra concurrent claimants beyond the baseline single caller.
std::atomic<int> g_extra_shares{0};

}  // namespace

int thread_budget() {
  static const int budget = [] {
    if (const char* env = std::getenv("CAGNET_THREADS")) {
      const int v = std::atoi(env);
      if (v > 0) return v;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }();
  return budget;
}

int available_thread_budget() {
  const int claimants = 1 + g_extra_shares.load(std::memory_order_relaxed);
  return std::max(1, thread_budget() / claimants);
}

ScopedThreadBudgetShare::ScopedThreadBudgetShare(int ways)
    : extra_(std::max(ways, 1) - 1) {
  g_extra_shares.fetch_add(extra_, std::memory_order_relaxed);
}

ScopedThreadBudgetShare::~ScopedThreadBudgetShare() {
  g_extra_shares.fetch_sub(extra_, std::memory_order_relaxed);
}

}  // namespace cagnet
