#include "src/util/profiler.hpp"

#include <algorithm>
#include <sstream>

namespace cagnet {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kMisc:
      return "misc";
    case Phase::kTranspose:
      return "trpose";
    case Phase::kDenseComm:
      return "dcomm";
    case Phase::kSparseComm:
      return "scomm";
    case Phase::kSpmm:
      return "spmm";
    case Phase::kHaloPack:
      return "hpack";
    case Phase::kCompressPack:
      return "cpack";
    case Phase::kCount:
      break;
  }
  return "?";
}

double Profiler::total_seconds() const {
  double total = 0.0;
  for (double s : seconds_) total += s;
  return total;
}

void Profiler::merge_max(const Profiler& other) {
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    seconds_[i] = std::max(seconds_[i], other.seconds_[i]);
  }
}

std::string Profiler::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    if (i != 0) os << " ";
    os << phase_name(static_cast<Phase>(i)) << "=" << seconds_[i];
  }
  return os.str();
}

}  // namespace cagnet
