#include "src/util/cli.hpp"

#include <cstdlib>
#include <sstream>

namespace cagnet {

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

long CliArgs::get_int(const std::string& name, long fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtol(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

std::vector<long> CliArgs::get_int_list(
    const std::string& name, const std::vector<long>& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<long> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::strtol(item.c_str(), nullptr, 10));
  }
  return out;
}

}  // namespace cagnet
