#include "src/util/error.hpp"

#include <sstream>

namespace cagnet::detail {

void fail(const char* expr, const std::string& msg, std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ":" << loc.line() << " in " << loc.function_name()
     << ": check `" << expr << "` failed: " << msg;
  throw Error(os.str());
}

}  // namespace cagnet::detail
