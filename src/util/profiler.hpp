// Per-rank phase profiler matching the cost breakdown of the paper's Fig. 3.
//
// The paper reports per-epoch time split into: scomm (sparse-matrix
// communication), dcomm (dense-matrix communication), trpose (distributed
// transposes), spmm (local SpMM), and misc (everything else, including local
// GEMM). Each rank owns a Profiler; the trainer merges them with a max-reduce
// per phase because a bulk-synchronous epoch is dictated by the slowest rank.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "src/util/timer.hpp"

namespace cagnet {

/// Phases of one training epoch, in the paper's Fig. 3 vocabulary, plus
/// the halo-pack phase the sparsity-aware exchange adds ("hpack": the
/// host-side row pack/unpack of the demand-driven halo path — serialized
/// staging work the paper's Fig. 3 has no slot for, reported separately
/// so it cannot hide inside misc).
enum class Phase : std::size_t {
  kMisc = 0,    ///< local GEMM, activations, optimizer, bookkeeping
  kTranspose,   ///< distributed transpose of the adjacency ("trpose")
  kDenseComm,   ///< dense-matrix collectives ("dcomm")
  kSparseComm,  ///< sparse-matrix collectives ("scomm")
  kSpmm,          ///< local sparse x dense multiplies
  kHaloPack,      ///< halo-exchange row pack/unpack ("hpack")
  kCompressPack,  ///< lossy-codec encode/decode ("cpack")
  kCount
};

/// Short display name matching the paper's figure legend.
const char* phase_name(Phase p);

/// Accumulates wall seconds per phase for one rank.
class Profiler {
 public:
  static constexpr std::size_t kNumPhases =
      static_cast<std::size_t>(Phase::kCount);

  void add(Phase p, double seconds) {
    seconds_[static_cast<std::size_t>(p)] += seconds;
  }

  double seconds(Phase p) const {
    return seconds_[static_cast<std::size_t>(p)];
  }

  double total_seconds() const;

  void clear() { seconds_ = {}; }

  /// Per-phase max across two profilers (per-phase slowest-rank merge).
  void merge_max(const Profiler& other);

  /// One-line "phase=secs" summary.
  std::string to_string() const;

 private:
  std::array<double, kNumPhases> seconds_ = {};
};

/// RAII scope timer: adds its lifetime to `profiler[phase]` on destruction.
class ScopedPhase {
 public:
  ScopedPhase(Profiler& profiler, Phase phase)
      : profiler_(profiler), phase_(phase) {}
  ~ScopedPhase() { profiler_.add(phase_, timer_.seconds()); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Profiler& profiler_;
  Phase phase_;
  WallTimer timer_;
};

}  // namespace cagnet
