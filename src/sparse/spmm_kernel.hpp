// Raw CSR x dense kernel, templated on the value type.
//
// This is the workhorse the paper offloads to cuSPARSE csrmm2; here it is a
// portable CPU kernel whose inner loop is a contiguous axpy over the dense
// operand's row (length f), which vectorizes. Templating lets the local-SpMM
// bench (E6) measure both fp32 (the paper's GPU precision) and fp64.
#pragma once

#include "src/util/types.hpp"

namespace cagnet {

/// y[i,:] (+)= sum_k a(i,k) * x[k,:] for a CSR matrix a of shape
/// (rows x anything), x with `f` columns, y with `f` columns.
/// If `accumulate` is false, y rows are overwritten.
template <typename T>
void spmm_csr_kernel(Index rows, const Index* row_ptr, const Index* col_idx,
                     const T* vals, const T* x, Index f, T* y,
                     bool accumulate) {
  for (Index i = 0; i < rows; ++i) {
    T* yrow = y + i * f;
    if (!accumulate) {
      for (Index j = 0; j < f; ++j) yrow[j] = T{0};
    }
    for (Index p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const T v = vals[p];
      const T* xrow = x + col_idx[p] * f;
      for (Index j = 0; j < f; ++j) yrow[j] += v * xrow[j];
    }
  }
}

}  // namespace cagnet
