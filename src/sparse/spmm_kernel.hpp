// Raw CSR x dense kernel, templated on the value type.
//
// This is the workhorse the paper offloads to cuSPARSE csrmm2; here it is a
// portable CPU kernel whose inner loop is a contiguous axpy over the dense
// operand's row (length f), which vectorizes. Templating lets the local-SpMM
// bench (E6) measure both fp32 (the paper's GPU precision) and fp64.
//
// The kernel is parallelized over contiguous row blocks on the persistent
// process-wide pool (src/util/parallel.hpp): each chunk owns a disjoint
// row range (boundaries chosen to balance nnz), so no synchronization or
// atomics are needed and the result is bitwise identical for every thread
// count. The automatic chunk count comes from the process thread budget
// (CAGNET_THREADS or the hardware concurrency, divided across concurrent
// simulated-world ranks) and is clamped by a minimum-work heuristic so the
// tiny per-rank blocks of the simulated distributed worlds stay serial.
#pragma once

#include <algorithm>
#include <vector>

#include "src/util/parallel.hpp"
#include "src/util/types.hpp"

namespace cagnet {

namespace detail {

/// Flops below which threading overhead outweighs the kernel itself.
inline constexpr double kSpmmMinFlopsPerThread = 1 << 18;

/// Serial row-range body shared by the serial and threaded paths.
template <typename T>
void spmm_rows(Index r0, Index r1, const Index* row_ptr, const Index* col_idx,
               const T* vals, const T* x, Index f, T* y, bool accumulate) {
  for (Index i = r0; i < r1; ++i) {
    T* yrow = y + i * f;
    if (!accumulate) {
      for (Index j = 0; j < f; ++j) yrow[j] = T{0};
    }
    for (Index p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const T v = vals[p];
      const T* xrow = x + col_idx[p] * f;
      for (Index j = 0; j < f; ++j) yrow[j] += v * xrow[j];
    }
  }
}

}  // namespace detail

/// y[i,:] (+)= sum_k a(i,k) * x[k,:] for a CSR matrix a of shape
/// (rows x anything), x with `f` columns, y with `f` columns.
/// If `accumulate` is false, y rows are overwritten.
///
/// `num_threads` <= 0 selects automatically: up to
/// available_thread_budget() chunks, scaled down so each keeps at least
/// ~256k flops. Row-block boundaries are placed at nnz quantiles
/// (contiguous blocks, balanced work), so every thread count produces
/// bitwise-identical output. Chunks execute on the persistent pool; the
/// call never spawns threads.
template <typename T>
void spmm_csr_kernel(Index rows, const Index* row_ptr, const Index* col_idx,
                     const T* vals, const T* x, Index f, T* y,
                     bool accumulate, int num_threads = 0) {
  const Index nnz = rows > 0 ? row_ptr[rows] : 0;
  int threads = num_threads;
  if (threads <= 0) {
    const double flops = 2.0 * static_cast<double>(nnz) *
                         static_cast<double>(f);
    threads = plan_chunks(flops, detail::kSpmmMinFlopsPerThread,
                          std::max<Index>(rows, 1));
  }
  threads = static_cast<int>(
      std::min<Index>(static_cast<Index>(threads), std::max<Index>(rows, 1)));

  if (threads <= 1) {
    detail::spmm_rows(Index{0}, rows, row_ptr, col_idx, vals, x, f, y,
                      accumulate);
    return;
  }

  // Contiguous row blocks with ~equal nnz: boundary w is the first row
  // whose cumulative nnz reaches w/threads of the total.
  std::vector<Index> bounds(static_cast<std::size_t>(threads) + 1);
  bounds[0] = 0;
  for (int w = 1; w < threads; ++w) {
    const Index target = nnz * w / threads;
    const Index* found = std::lower_bound(row_ptr, row_ptr + rows + 1, target);
    bounds[static_cast<std::size_t>(w)] =
        std::max(bounds[static_cast<std::size_t>(w - 1)],
                 static_cast<Index>(found - row_ptr));
  }
  bounds[static_cast<std::size_t>(threads)] = rows;

  parallel_for_chunks(threads, [&](int w) {
    detail::spmm_rows(bounds[static_cast<std::size_t>(w)],
                      bounds[static_cast<std::size_t>(w) + 1], row_ptr,
                      col_idx, vals, x, f, y, accumulate);
  });
}

}  // namespace cagnet
