// Semiring-generic SpMM: the expressiveness extension of Section I.
//
// "Our current implementations operate on the standard real field but they
//  can be trivially extended to support arbitrary aggregate operations to
//  increase the expressive power of GNNs ... overload scalar addition
//  operations through their semiring interface, which is exactly the
//  neighborhood aggregate function when applied to graphs."
//
// A semiring supplies (combine, reduce, identity): combine multiplies an
// edge weight with a feature value; reduce aggregates over the incoming
// neighborhood. PlusTimes recovers standard SpMM; MinPlus performs
// single-source-shortest-path relaxations; MaxTimes is a max-pooling
// neighborhood aggregator (GraphSAGE-pool flavour); OrAnd is boolean
// reachability (BFS frontiers).
#pragma once

#include <algorithm>
#include <limits>

#include "src/dense/matrix.hpp"
#include "src/sparse/csr.hpp"

namespace cagnet {

/// y[i,:] = REDUCE over nonzeros a(i,k) of COMBINE(a(i,k), x[k,:]),
/// starting from S::identity(). Rows with no nonzeros are set to identity.
template <typename S>
void spmm_semiring(const Csr& a, const Matrix& x, Matrix& y) {
  CAGNET_CHECK(x.rows() == a.cols(), "spmm_semiring: inner dim mismatch");
  CAGNET_CHECK(y.rows() == a.rows() && y.cols() == x.cols(),
               "spmm_semiring: bad output shape");
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto vals = a.values();
  const Index f = x.cols();
  for (Index i = 0; i < a.rows(); ++i) {
    auto yrow = y.row(i);
    std::fill(yrow.begin(), yrow.end(), S::identity());
    for (Index p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const Real v = vals[p];
      const auto xrow = x.row(col_idx[p]);
      for (Index j = 0; j < f; ++j) {
        yrow[j] = S::reduce(yrow[j], S::combine(v, xrow[j]));
      }
    }
  }
}

/// Standard (+, *): ordinary SpMM over the real field.
struct PlusTimes {
  static Real identity() { return Real{0}; }
  static Real combine(Real edge, Real feature) { return edge * feature; }
  static Real reduce(Real acc, Real value) { return acc + value; }
};

/// Tropical (min, +): one step relaxes all shortest-path estimates through
/// one additional edge (Bellman-Ford sweep).
struct MinPlus {
  static Real identity() { return std::numeric_limits<Real>::infinity(); }
  static Real combine(Real edge, Real feature) { return edge + feature; }
  static Real reduce(Real acc, Real value) { return std::min(acc, value); }
};

/// (max, *): max-pooling neighborhood aggregation over weighted neighbors.
struct MaxTimes {
  static Real identity() {
    return -std::numeric_limits<Real>::infinity();
  }
  static Real combine(Real edge, Real feature) { return edge * feature; }
  static Real reduce(Real acc, Real value) { return std::max(acc, value); }
};

/// Boolean (or, and) on {0, 1}: one step expands a reachability frontier.
struct OrAnd {
  static Real identity() { return Real{0}; }
  static Real combine(Real edge, Real feature) {
    return (edge != Real{0} && feature != Real{0}) ? Real{1} : Real{0};
  }
  static Real reduce(Real acc, Real value) {
    return (acc != Real{0} || value != Real{0}) ? Real{1} : Real{0};
  }
};

}  // namespace cagnet
