// Synthetic graph generators.
//
// The paper's datasets (Reddit, Amazon, the HipMCL protein network) are not
// redistributable here; per DESIGN.md we substitute generated graphs that
// preserve the quantities the communication analysis depends on: vertex
// count, edge count / average degree, and (via R-MAT) scale-free degree skew.
#pragma once

#include "src/sparse/coo.hpp"
#include "src/util/rng.hpp"

namespace cagnet {

/// Erdős–Rényi G(n, d/n) by ball dropping: samples ~`n*avg_degree` directed
/// edges uniformly; duplicates merge, so the realized nnz is slightly lower.
/// Used for the theoretical sparsity analysis of the 1D outer product
/// (Section IV-A.3 follows Ballard et al. on exactly this model).
Coo erdos_renyi(Index n, double avg_degree, Rng& rng);

/// R-MAT parameters (Graph500 defaults give the heavy skew of social and
/// biological networks).
struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  // d = 1 - a - b - c
  bool scramble_ids = true;  ///< random vertex relabeling to break locality
};

/// R-MAT graph over n vertices (rounded up to a power of two internally;
/// out-of-range endpoints are resampled) with ~edges sampled nonzeros.
Coo rmat(Index n, Index edges, Rng& rng, const RmatParams& params = {});

/// Community-structured graph with hubs: `communities` equal-size planted
/// communities, each vertex drawing ~intra_degree edges inside its
/// community and ~inter_degree outside, plus `hub_fraction` of vertices
/// receiving `hub_degree` extra global edges. Models datasets like Reddit
/// whose strong community structure is what METIS exploits in the paper's
/// Section IV-A.8 study, while the hubs reproduce the skew that caps the
/// max-per-process improvement.
Coo planted_partition(Index n, Index communities, double intra_degree,
                      double inter_degree, Rng& rng,
                      double hub_fraction = 0.005, double hub_degree = 200);

}  // namespace cagnet
