#include "src/sparse/generate.hpp"

#include <algorithm>
#include <numeric>

#include "src/util/error.hpp"

namespace cagnet {

Coo erdos_renyi(Index n, double avg_degree, Rng& rng) {
  CAGNET_CHECK(n > 0, "erdos_renyi: n must be positive");
  CAGNET_CHECK(avg_degree >= 0, "erdos_renyi: negative degree");
  const auto target =
      static_cast<std::size_t>(avg_degree * static_cast<double>(n));
  Coo coo(n, n);
  coo.reserve(target);
  for (std::size_t e = 0; e < target; ++e) {
    const auto u = static_cast<Index>(rng.next_below(
        static_cast<std::uint64_t>(n)));
    const auto v = static_cast<Index>(rng.next_below(
        static_cast<std::uint64_t>(n)));
    coo.add(u, v, Real{1});
  }
  coo.sort_and_combine();
  return coo;
}

Coo rmat(Index n, Index edges, Rng& rng, const RmatParams& params) {
  CAGNET_CHECK(n > 0 && edges >= 0, "rmat: bad arguments");
  CAGNET_CHECK(params.a > 0 && params.b >= 0 && params.c >= 0 &&
                   params.a + params.b + params.c < 1.0 + 1e-12,
               "rmat: probabilities must form a distribution");
  int levels = 0;
  Index pow2 = 1;
  while (pow2 < n) {
    pow2 <<= 1;
    ++levels;
  }

  Coo coo(n, n);
  coo.reserve(static_cast<std::size_t>(edges));
  const double pa = params.a;
  const double pab = params.a + params.b;
  const double pabc = params.a + params.b + params.c;

  for (Index e = 0; e < edges; ++e) {
    Index u = 0;
    Index v = 0;
    // Resample the whole edge if the recursive descent lands outside [0, n):
    // rejection keeps the within-range distribution unchanged.
    while (true) {
      u = 0;
      v = 0;
      for (int level = 0; level < levels; ++level) {
        const double r = rng.next_double();
        const Index bit = pow2 >> (level + 1);
        if (r < pa) {
          // upper-left: no bits set
        } else if (r < pab) {
          v |= bit;
        } else if (r < pabc) {
          u |= bit;
        } else {
          u |= bit;
          v |= bit;
        }
      }
      if (u < n && v < n) break;
    }
    coo.add(u, v, Real{1});
  }

  if (params.scramble_ids && n > 1) {
    std::vector<Index> perm(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), Index{0});
    // Fisher-Yates with our deterministic stream.
    for (Index i = n - 1; i > 0; --i) {
      const auto j = static_cast<Index>(
          rng.next_below(static_cast<std::uint64_t>(i + 1)));
      std::swap(perm[static_cast<std::size_t>(i)],
                perm[static_cast<std::size_t>(j)]);
    }
    coo.permute(perm);
  }
  coo.sort_and_combine();
  return coo;
}

Coo planted_partition(Index n, Index communities, double intra_degree,
                      double inter_degree, Rng& rng, double hub_fraction,
                      double hub_degree) {
  CAGNET_CHECK(n > 0 && communities > 0 && communities <= n,
               "planted_partition: bad arguments");
  Coo coo(n, n);
  const Index comm_size = (n + communities - 1) / communities;
  coo.reserve(static_cast<std::size_t>(
      (intra_degree + inter_degree) * static_cast<double>(n)));

  for (Index u = 0; u < n; ++u) {
    const Index community = u / comm_size;
    const Index lo = community * comm_size;
    const Index hi = std::min(lo + comm_size, n);
    const auto intra = static_cast<Index>(intra_degree);
    for (Index e = 0; e < intra; ++e) {
      const Index v =
          lo + static_cast<Index>(rng.next_below(
                   static_cast<std::uint64_t>(hi - lo)));
      if (v != u) coo.add(u, v, Real{1});
    }
    const auto inter = static_cast<Index>(inter_degree);
    for (Index e = 0; e < inter; ++e) {
      const Index v = static_cast<Index>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      if (v != u) coo.add(u, v, Real{1});
    }
  }

  // Hubs: a small set of vertices with graph-wide adjacency (the skew that
  // keeps the busiest process busy regardless of partition quality).
  const auto hubs = static_cast<Index>(hub_fraction * static_cast<double>(n));
  for (Index h = 0; h < hubs; ++h) {
    const Index u = static_cast<Index>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    const auto extra = static_cast<Index>(hub_degree);
    for (Index e = 0; e < extra; ++e) {
      const Index v = static_cast<Index>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      if (v != u) coo.add(u, v, Real{1});
    }
  }
  coo.sort_and_combine();
  return coo;
}

}  // namespace cagnet
