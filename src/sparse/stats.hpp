// Degree and sparsity statistics, including the hypersparsity metrics the
// paper uses to explain local-SpMM slowdown under 2D partitioning (§VI-a).
#pragma once

#include <string>
#include <vector>

#include "src/sparse/csr.hpp"

namespace cagnet {

struct DegreeStats {
  Index rows = 0;
  Index nnz = 0;
  double avg_degree = 0.0;
  Index max_degree = 0;
  Index empty_rows = 0;
};

DegreeStats degree_stats(const Csr& a);

/// Statistics of a square matrix partitioned on a grid_dim x grid_dim process
/// grid: the paper observes that a 2D-partitioned submatrix's average degree
/// falls by a factor of sqrt(P), driving cuSPARSE into its slow hypersparse
/// regime.
struct HypersparsityReport {
  Index grid_dim = 0;
  double global_avg_degree = 0.0;
  double block_avg_degree = 0.0;  ///< mean over blocks of nnz_block / rows_block
  double min_block_degree = 0.0;
  double max_block_degree = 0.0;
  double avg_empty_row_fraction = 0.0;  ///< mean over blocks
};

HypersparsityReport hypersparsity_report(const Csr& a, Index grid_dim);

std::string to_string(const DegreeStats& s);
std::string to_string(const HypersparsityReport& r);

}  // namespace cagnet
