// Coordinate-format sparse matrix: the construction/interchange format.
//
// Graph generators and the GCN normalization build COO; everything
// performance-sensitive converts to CSR.
#pragma once

#include <vector>

#include "src/util/error.hpp"
#include "src/util/types.hpp"

namespace cagnet {

/// One nonzero.
struct Triple {
  Index row;
  Index col;
  Real val;
};

/// Unordered triplet list with explicit dimensions.
class Coo {
 public:
  Coo() = default;
  Coo(Index rows, Index cols) : rows_(rows), cols_(cols) {
    CAGNET_CHECK(rows >= 0 && cols >= 0, "negative COO dimension");
  }

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index nnz() const { return static_cast<Index>(entries_.size()); }

  void reserve(std::size_t n) { entries_.reserve(n); }

  void add(Index row, Index col, Real val) {
    CAGNET_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_,
                 "COO entry out of range");
    entries_.push_back({row, col, val});
  }

  const std::vector<Triple>& entries() const { return entries_; }
  std::vector<Triple>& entries() { return entries_; }

  /// Sort by (row, col) and sum duplicates in place.
  void sort_and_combine();

  /// Make structurally symmetric: for every (i,j,v) also insert (j,i,v),
  /// then combine. Diagonal entries are not doubled.
  void symmetrize();

  /// Add the identity: (i,i,1) for all i. Requires square. Combine after.
  void add_self_loops();

  /// Apply a vertex relabeling: entry (i,j) -> (perm[i], perm[j]).
  /// perm must be a permutation of [0, rows). Requires square.
  void permute(const std::vector<Index>& perm);

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Triple> entries_;
};

}  // namespace cagnet
