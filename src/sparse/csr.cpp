#include "src/sparse/csr.hpp"

#include <algorithm>

#include "src/sparse/spmm_kernel.hpp"
#include "src/util/error.hpp"

namespace cagnet {

Csr::Csr(Index rows, Index cols) : rows_(rows), cols_(cols) {
  CAGNET_CHECK(rows >= 0 && cols >= 0, "negative CSR dimension");
  row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);
}

Csr Csr::from_coo(const Coo& coo) {
  Coo sorted = coo;
  sorted.sort_and_combine();

  Csr out(coo.rows(), coo.cols());
  const auto& entries = sorted.entries();
  out.col_idx_.resize(entries.size());
  out.vals_.resize(entries.size());
  for (const Triple& t : entries) {
    ++out.row_ptr_[static_cast<std::size_t>(t.row) + 1];
  }
  for (Index i = 0; i < out.rows_; ++i) {
    out.row_ptr_[static_cast<std::size_t>(i) + 1] +=
        out.row_ptr_[static_cast<std::size_t>(i)];
  }
  for (std::size_t p = 0; p < entries.size(); ++p) {
    out.col_idx_[p] = entries[p].col;
    out.vals_[p] = entries[p].val;
  }
  return out;
}

Csr Csr::from_parts(Index rows, Index cols, std::vector<Index> row_ptr,
                    std::vector<Index> col_idx, std::vector<Real> vals) {
  CAGNET_CHECK(row_ptr.size() == static_cast<std::size_t>(rows) + 1,
               "from_parts: row_ptr size mismatch");
  CAGNET_CHECK(col_idx.size() == vals.size(), "from_parts: nnz mismatch");
  CAGNET_CHECK(row_ptr.front() == 0 &&
                   row_ptr.back() == static_cast<Index>(col_idx.size()),
               "from_parts: row_ptr bounds mismatch");
  Csr out(rows, cols);
  out.row_ptr_ = std::move(row_ptr);
  out.col_idx_ = std::move(col_idx);
  out.vals_ = std::move(vals);
  return out;
}

void Csr::resize_parts(Index rows, Index cols, Index nnz) {
  CAGNET_CHECK(rows >= 0 && cols >= 0 && nnz >= 0,
               "resize_parts: negative dimension");
  rows_ = rows;
  cols_ = cols;
  row_ptr_.resize(static_cast<std::size_t>(rows) + 1);
  col_idx_.resize(static_cast<std::size_t>(nnz));
  vals_.resize(static_cast<std::size_t>(nnz));
}

Csr Csr::vstack(const std::vector<Csr>& pieces) {
  CAGNET_CHECK(!pieces.empty(), "vstack of nothing");
  Index rows = 0;
  Index nnz = 0;
  const Index cols = pieces.front().cols();
  for (const Csr& piece : pieces) {
    CAGNET_CHECK(piece.cols() == cols, "vstack: column count mismatch");
    rows += piece.rows();
    nnz += piece.nnz();
  }
  Csr out(rows, cols);
  out.col_idx_.reserve(static_cast<std::size_t>(nnz));
  out.vals_.reserve(static_cast<std::size_t>(nnz));
  Index row_cursor = 0;
  for (const Csr& piece : pieces) {
    for (Index r = 0; r < piece.rows(); ++r) {
      out.row_ptr_[static_cast<std::size_t>(row_cursor + r) + 1] =
          out.row_ptr_[static_cast<std::size_t>(row_cursor + r)] +
          piece.row_degree(r);
    }
    out.col_idx_.insert(out.col_idx_.end(), piece.col_idx_.begin(),
                        piece.col_idx_.end());
    out.vals_.insert(out.vals_.end(), piece.vals_.begin(), piece.vals_.end());
    row_cursor += piece.rows();
  }
  return out;
}

void Csr::spmm(const Matrix& x, Matrix& y, bool accumulate) const {
  CAGNET_CHECK(x.rows() == cols_, "spmm: A is " + std::to_string(rows_) + "x" +
                                      std::to_string(cols_) + " but X is " +
                                      x.shape_string());
  CAGNET_CHECK(y.rows() == rows_ && y.cols() == x.cols(),
               "spmm: bad output shape " + y.shape_string());
  spmm_csr_kernel<Real>(rows_, row_ptr_.data(), col_idx_.data(), vals_.data(),
                        x.data(), x.cols(), y.data(), accumulate);
}

Matrix Csr::multiply(const Matrix& x) const {
  Matrix y(rows_, x.cols());
  spmm(x, y, /*accumulate=*/false);
  return y;
}

Csr Csr::transposed() const {
  Csr out(cols_, rows_);
  out.col_idx_.resize(col_idx_.size());
  out.vals_.resize(vals_.size());

  // Counting sort by column index.
  for (Index c : col_idx_) ++out.row_ptr_[static_cast<std::size_t>(c) + 1];
  for (Index i = 0; i < out.rows_; ++i) {
    out.row_ptr_[static_cast<std::size_t>(i) + 1] +=
        out.row_ptr_[static_cast<std::size_t>(i)];
  }
  std::vector<Index> cursor(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  for (Index r = 0; r < rows_; ++r) {
    for (Index p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const Index c = col_idx_[p];
      const Index q = cursor[static_cast<std::size_t>(c)]++;
      out.col_idx_[static_cast<std::size_t>(q)] = r;
      out.vals_[static_cast<std::size_t>(q)] = vals_[p];
    }
  }
  // Rows were visited in increasing order, so columns are already sorted.
  return out;
}

void Csr::transposed_into(Csr& out, std::vector<Index>& scratch) const {
  CAGNET_CHECK(&out != this, "transposed_into: output must not alias input");
  out.resize_parts(cols_, rows_, nnz());
  const std::span<Index> out_row_ptr = out.row_ptr_mut();
  const std::span<Index> out_col_idx = out.col_idx_mut();
  const std::span<Real> out_vals = out.values();

  // Counting sort by column index (same pass structure as transposed()).
  std::fill(out_row_ptr.begin(), out_row_ptr.end(), Index{0});
  for (Index c : col_idx_) ++out_row_ptr[static_cast<std::size_t>(c) + 1];
  for (Index i = 0; i < cols_; ++i) {
    out_row_ptr[static_cast<std::size_t>(i) + 1] +=
        out_row_ptr[static_cast<std::size_t>(i)];
  }
  scratch.assign(out_row_ptr.begin(), out_row_ptr.end() - 1);
  for (Index r = 0; r < rows_; ++r) {
    for (Index p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const Index c = col_idx_[p];
      const Index q = scratch[static_cast<std::size_t>(c)]++;
      out_col_idx[static_cast<std::size_t>(q)] = r;
      out_vals[static_cast<std::size_t>(q)] = vals_[p];
    }
  }
  // Rows were visited in increasing order, so columns are already sorted.
}

Csr Csr::permuted(std::span<const Index> perm) const {
  CAGNET_CHECK(rows_ == cols_, "permuted expects a square matrix");
  CAGNET_CHECK(static_cast<Index>(perm.size()) == rows_,
               "permuted: permutation size mismatch");
  std::vector<Index> iperm(static_cast<std::size_t>(rows_));
  for (Index r = 0; r < rows_; ++r) {
    iperm[static_cast<std::size_t>(perm[static_cast<std::size_t>(r)])] = r;
  }
  Csr out(rows_, cols_);
  out.col_idx_.resize(col_idx_.size());
  out.vals_.resize(vals_.size());
  std::vector<std::pair<Index, Real>> row;
  Index q = 0;
  for (Index r = 0; r < rows_; ++r) {
    const Index old = perm[static_cast<std::size_t>(r)];
    row.clear();
    for (Index p = row_ptr_[old]; p < row_ptr_[old + 1]; ++p) {
      row.push_back({iperm[static_cast<std::size_t>(
                         col_idx_[static_cast<std::size_t>(p)])],
                     vals_[static_cast<std::size_t>(p)]});
    }
    std::sort(row.begin(), row.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [c, v] : row) {
      out.col_idx_[static_cast<std::size_t>(q)] = c;
      out.vals_[static_cast<std::size_t>(q)] = v;
      ++q;
    }
    out.row_ptr_[static_cast<std::size_t>(r) + 1] = q;
  }
  return out;
}

Csr Csr::with_remapped_columns(std::span<const Index> new_col,
                               Index new_cols) const {
  CAGNET_CHECK(static_cast<Index>(new_col.size()) == cols_,
               "with_remapped_columns: map size mismatch");
  Csr out(rows_, new_cols);
  out.row_ptr_ = row_ptr_;
  out.vals_ = vals_;
  out.col_idx_.resize(col_idx_.size());
  for (std::size_t p = 0; p < col_idx_.size(); ++p) {
    const Index mapped = new_col[static_cast<std::size_t>(col_idx_[p])];
    CAGNET_CHECK(mapped >= 0 && mapped < new_cols,
                 "with_remapped_columns: structural column left unmapped");
    out.col_idx_[p] = mapped;
  }
  return out;
}

Csr Csr::block(Index r0, Index r1, Index c0, Index c1) const {
  CAGNET_CHECK(0 <= r0 && r0 <= r1 && r1 <= rows_, "bad block row range");
  CAGNET_CHECK(0 <= c0 && c0 <= c1 && c1 <= cols_, "bad block col range");
  Csr out(r1 - r0, c1 - c0);

  // Two passes: count, then fill. Column indices within a row are sorted, so
  // the [c0, c1) span of each row is found by binary search.
  std::vector<std::pair<Index, Index>> spans(
      static_cast<std::size_t>(r1 - r0));
  Index total = 0;
  for (Index r = r0; r < r1; ++r) {
    const auto begin = col_idx_.begin() + row_ptr_[r];
    const auto end = col_idx_.begin() + row_ptr_[r + 1];
    const Index lo =
        static_cast<Index>(std::lower_bound(begin, end, c0) - col_idx_.begin());
    const Index hi =
        static_cast<Index>(std::lower_bound(begin, end, c1) - col_idx_.begin());
    spans[static_cast<std::size_t>(r - r0)] = {lo, hi};
    total += hi - lo;
    out.row_ptr_[static_cast<std::size_t>(r - r0) + 1] = total;
  }
  out.col_idx_.resize(static_cast<std::size_t>(total));
  out.vals_.resize(static_cast<std::size_t>(total));
  Index q = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    for (Index p = spans[i].first; p < spans[i].second; ++p, ++q) {
      out.col_idx_[static_cast<std::size_t>(q)] =
          col_idx_[static_cast<std::size_t>(p)] - c0;
      out.vals_[static_cast<std::size_t>(q)] =
          vals_[static_cast<std::size_t>(p)];
    }
  }
  return out;
}

Matrix Csr::to_dense() const {
  Matrix out(rows_, cols_);
  for (Index r = 0; r < rows_; ++r) {
    for (Index p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      out(r, col_idx_[static_cast<std::size_t>(p)]) +=
          vals_[static_cast<std::size_t>(p)];
    }
  }
  return out;
}

void Csr::scale_rows_cols(std::span<const Real> row_scale,
                          std::span<const Real> col_scale) {
  CAGNET_CHECK(static_cast<Index>(row_scale.size()) == rows_,
               "row scale size mismatch");
  CAGNET_CHECK(static_cast<Index>(col_scale.size()) == cols_,
               "col scale size mismatch");
  for (Index r = 0; r < rows_; ++r) {
    for (Index p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      vals_[static_cast<std::size_t>(p)] *=
          row_scale[static_cast<std::size_t>(r)] *
          col_scale[static_cast<std::size_t>(
              col_idx_[static_cast<std::size_t>(p)])];
    }
  }
}

std::vector<Real> Csr::row_sums() const {
  std::vector<Real> sums(static_cast<std::size_t>(rows_), Real{0});
  for (Index r = 0; r < rows_; ++r) {
    for (Index p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      sums[static_cast<std::size_t>(r)] += vals_[static_cast<std::size_t>(p)];
    }
  }
  return sums;
}

Index Csr::nonempty_rows() const {
  Index count = 0;
  for (Index r = 0; r < rows_; ++r) {
    if (row_ptr_[r + 1] > row_ptr_[r]) ++count;
  }
  return count;
}

}  // namespace cagnet
