// Compressed sparse row matrix: the adjacency operand of every SpMM.
#pragma once

#include <span>
#include <vector>

#include "src/dense/matrix.hpp"
#include "src/sparse/coo.hpp"
#include "src/util/types.hpp"

namespace cagnet {

/// CSR with sorted column indices within each row.
class Csr {
 public:
  Csr() = default;

  /// Empty matrix of the given shape.
  Csr(Index rows, Index cols);

  /// Build from COO; duplicates are summed, columns sorted.
  static Csr from_coo(const Coo& coo);

  /// Assemble from raw CSR arrays (deserialization). row_ptr must have
  /// rows+1 monotone entries ending at col_idx.size(); columns must be
  /// sorted within rows.
  static Csr from_parts(Index rows, Index cols, std::vector<Index> row_ptr,
                        std::vector<Index> col_idx, std::vector<Real> vals);

  /// Vertical concatenation of row-blocks with identical column counts
  /// (the assembly step of the 3D distributed transpose).
  static Csr vstack(const std::vector<Csr>& pieces);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index nnz() const { return static_cast<Index>(col_idx_.size()); }

  std::span<const Index> row_ptr() const { return row_ptr_; }
  std::span<const Index> col_idx() const { return col_idx_; }
  std::span<const Real> values() const { return vals_; }
  std::span<Real> values() { return vals_; }

  /// Reshape to (rows x cols) with `nnz` slots, reusing the existing
  /// buffers when their capacity suffices — the receive side of the CSR
  /// collectives deserializes straight into the mutable views below.
  /// Contents are unspecified until the caller fills them (and must
  /// satisfy the from_parts invariants afterwards).
  void resize_parts(Index rows, Index cols, Index nnz);

  std::span<Index> row_ptr_mut() { return row_ptr_; }
  std::span<Index> col_idx_mut() { return col_idx_; }

  /// Number of structural nonzeros in row i.
  Index row_degree(Index i) const { return row_ptr_[i + 1] - row_ptr_[i]; }

  /// y = A * x (or y += if accumulate), where x is (cols() x f).
  void spmm(const Matrix& x, Matrix& y, bool accumulate = false) const;

  /// Allocating convenience form of spmm.
  Matrix multiply(const Matrix& x) const;

  /// Structural + numerical transpose (counting sort; O(nnz + n)).
  Csr transposed() const;

  /// Transpose into an existing matrix, reusing `out`'s buffers (and
  /// `scratch` as the counting-sort cursor) so steady-state callers — the
  /// sampled minibatch trainer rebuilds per-batch block transposes every
  /// iteration — stop allocating once capacities have grown. `out` must
  /// not alias this.
  void transposed_into(Csr& out, std::vector<Index>& scratch) const;

  /// Symmetric relabeling of a square matrix: new(r, c) = old(perm[r],
  /// perm[c]), where perm[r] is the old index at new position r (a
  /// bijection). This is the partition-induced vertex permutation applied
  /// to the adjacency; columns are re-sorted within each row.
  Csr permuted(std::span<const Index> perm) const;

  /// Column compaction: new_col[c] gives each old column's new index, or
  /// -1 for columns guaranteed structurally empty. The map must be
  /// strictly increasing on the mapped columns (so sortedness is
  /// preserved); the result has `new_cols` columns and identical rows,
  /// row_ptr, and values. This builds the halo-compacted A^T blocks whose
  /// dense operand holds only the received remote rows.
  Csr with_remapped_columns(std::span<const Index> new_col,
                            Index new_cols) const;

  /// Extract the sub-matrix rows [r0, r1) x cols [c0, c1) with indices
  /// rebased to the block origin. This is the grid-blocking primitive used
  /// by the 1D/2D/3D data distributions.
  Csr block(Index r0, Index r1, Index c0, Index c1) const;

  /// Dense copy, for tests and tiny examples only.
  Matrix to_dense() const;

  /// Scale: vals[p] *= row_scale[row(p)] * col_scale[col(p)].
  /// Used by the GCN normalization D^-1/2 (A+I) D^-1/2.
  void scale_rows_cols(std::span<const Real> row_scale,
                       std::span<const Real> col_scale);

  /// Sum of values per row (the weighted degree vector).
  std::vector<Real> row_sums() const;

  /// Rows with at least one structural nonzero. Used by the hypersparsity
  /// analysis (Ballard et al. expected non-empty row counts).
  Index nonempty_rows() const;

  bool operator==(const Csr& other) const = default;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Index> row_ptr_;  // size rows_+1
  std::vector<Index> col_idx_;  // size nnz
  std::vector<Real> vals_;      // size nnz
};

}  // namespace cagnet
