#include "src/sparse/coo.hpp"

#include <algorithm>

namespace cagnet {

void Coo::sort_and_combine() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Triple& a, const Triple& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (out > 0 && entries_[out - 1].row == entries_[i].row &&
        entries_[out - 1].col == entries_[i].col) {
      entries_[out - 1].val += entries_[i].val;
    } else {
      entries_[out++] = entries_[i];
    }
  }
  entries_.resize(out);
}

void Coo::symmetrize() {
  CAGNET_CHECK(rows_ == cols_, "symmetrize requires a square matrix");
  const std::size_t original = entries_.size();
  entries_.reserve(original * 2);
  for (std::size_t i = 0; i < original; ++i) {
    const Triple t = entries_[i];
    if (t.row != t.col) entries_.push_back({t.col, t.row, t.val});
  }
  sort_and_combine();
}

void Coo::add_self_loops() {
  CAGNET_CHECK(rows_ == cols_, "self loops require a square matrix");
  entries_.reserve(entries_.size() + static_cast<std::size_t>(rows_));
  for (Index i = 0; i < rows_; ++i) entries_.push_back({i, i, Real{1}});
  sort_and_combine();
}

void Coo::permute(const std::vector<Index>& perm) {
  CAGNET_CHECK(rows_ == cols_, "permute requires a square matrix");
  CAGNET_CHECK(static_cast<Index>(perm.size()) == rows_,
               "permutation size mismatch");
  for (auto& t : entries_) {
    t.row = perm[static_cast<std::size_t>(t.row)];
    t.col = perm[static_cast<std::size_t>(t.col)];
  }
}

}  // namespace cagnet
