#include "src/sparse/stats.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "src/util/error.hpp"

namespace cagnet {

DegreeStats degree_stats(const Csr& a) {
  DegreeStats s;
  s.rows = a.rows();
  s.nnz = a.nnz();
  s.avg_degree =
      a.rows() > 0 ? static_cast<double>(a.nnz()) / static_cast<double>(a.rows())
                   : 0.0;
  for (Index r = 0; r < a.rows(); ++r) {
    const Index d = a.row_degree(r);
    s.max_degree = std::max(s.max_degree, d);
    if (d == 0) ++s.empty_rows;
  }
  return s;
}

HypersparsityReport hypersparsity_report(const Csr& a, Index grid_dim) {
  CAGNET_CHECK(grid_dim > 0, "grid_dim must be positive");
  CAGNET_CHECK(a.rows() == a.cols(), "hypersparsity report expects square A");
  HypersparsityReport r;
  r.grid_dim = grid_dim;
  r.global_avg_degree =
      a.rows() > 0 ? static_cast<double>(a.nnz()) / static_cast<double>(a.rows())
                   : 0.0;
  r.min_block_degree = std::numeric_limits<double>::infinity();

  const Index n = a.rows();
  double degree_sum = 0.0;
  double empty_sum = 0.0;
  for (Index bi = 0; bi < grid_dim; ++bi) {
    const Index r0 = bi * n / grid_dim;
    const Index r1 = (bi + 1) * n / grid_dim;
    for (Index bj = 0; bj < grid_dim; ++bj) {
      const Index c0 = bj * n / grid_dim;
      const Index c1 = (bj + 1) * n / grid_dim;
      const Csr blk = a.block(r0, r1, c0, c1);
      const double rows = static_cast<double>(blk.rows());
      const double deg =
          rows > 0 ? static_cast<double>(blk.nnz()) / rows : 0.0;
      degree_sum += deg;
      empty_sum += rows > 0 ? static_cast<double>(blk.rows() -
                                                  blk.nonempty_rows()) /
                                  rows
                            : 0.0;
      r.min_block_degree = std::min(r.min_block_degree, deg);
      r.max_block_degree = std::max(r.max_block_degree, deg);
    }
  }
  const double blocks = static_cast<double>(grid_dim * grid_dim);
  r.block_avg_degree = degree_sum / blocks;
  r.avg_empty_row_fraction = empty_sum / blocks;
  if (r.min_block_degree == std::numeric_limits<double>::infinity()) {
    r.min_block_degree = 0.0;
  }
  return r;
}

std::string to_string(const DegreeStats& s) {
  std::ostringstream os;
  os << "rows=" << s.rows << " nnz=" << s.nnz << " avg_deg=" << s.avg_degree
     << " max_deg=" << s.max_degree << " empty_rows=" << s.empty_rows;
  return os.str();
}

std::string to_string(const HypersparsityReport& r) {
  std::ostringstream os;
  os << "grid=" << r.grid_dim << "x" << r.grid_dim
     << " global_avg_deg=" << r.global_avg_degree
     << " block_avg_deg=" << r.block_avg_degree << " block_deg_range=["
     << r.min_block_degree << ", " << r.max_block_degree << "]"
     << " avg_empty_row_frac=" << r.avg_empty_row_fraction;
  return os.str();
}

}  // namespace cagnet
